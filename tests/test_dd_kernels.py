"""Tests of the DD kernel overhaul: flyweight edges, hybrid dense-subtree
cutoff, memoized trace/probability queries, and statistics stability."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.random_circuits import random_static_circuit
from repro.cli import build_parser
from repro.core import Configuration, check_equivalence
from repro.dd.circuits import circuit_to_unitary_dd
from repro.dd.nodes import M_ONE, M_ZERO, V_ONE, V_ZERO, VEdge
from repro.dd.package import DDPackage
from repro.exceptions import DDError, EquivalenceCheckingError
from repro.simulators.dd_simulator import DDSimulator

H2 = np.array([[1, 1], [1, -1]], dtype=complex) / np.sqrt(2)

MAX_EXAMPLES = 10


class TestFlyweightEdges:
    def test_zero_edges_are_singletons(self):
        package = DDPackage(2)
        assert package.zero_vector_edge() is V_ZERO
        assert package.zero_matrix_edge() is M_ZERO
        assert V_ZERO.is_zero and M_ZERO.is_zero
        assert V_ONE.is_terminal and M_ONE.is_terminal and not V_ONE.is_zero

    def test_normalizing_away_returns_the_zero_singleton(self):
        package = DDPackage(1)
        edge = package.make_vector_node(0, (VEdge(None, 1e-14), VEdge(None, -1e-13)))
        assert edge is V_ZERO

    def test_legacy_lookup_and_fast_path_share_one_key_space(self):
        # The kernels build signature keys inline; UniqueTable.lookup derives
        # them via ckey.  Both must intern identical structures to the SAME
        # node, including weights that need rounding and -0.0 collapsing —
        # this is the invariant that lets node identity stand in for
        # structural equality.
        from repro.dd.nodes import VNode

        package = DDPackage(1)
        for weights in [(0.6, 0.8), (1.0, 1.0 / 3.0), (1.0, -1e-14 + 1.0j)]:
            fast = package.make_vector_node(
                0, (VEdge(None, weights[0]), VEdge(None, weights[1]))
            )
            legacy = package._vector_table.lookup(
                0, fast.node.edges, lambda idx, e: VNode(idx, tuple(e))
            )
            assert legacy is fast.node

    def test_nodes_carry_their_signature_hash(self):
        package = DDPackage(1)
        first = package.make_vector_node(0, (VEdge(None, 1.0), VEdge(None, 0.5)))
        second = package.make_vector_node(0, (VEdge(None, 2.0), VEdge(None, 1.0)))
        # Same structure after normalization -> hash-consed to the same node,
        # whose ``hash`` slot was filled in at creation.
        assert first.node is second.node
        assert isinstance(first.node.hash, int)

    def test_gate_cache_statistics_unchanged_by_refactor(self):
        # Mirrors the PR 1 counting contract: 24 gate applications, 3 distinct
        # (gate, qubits) keys — also with the hybrid kernels enabled.
        from repro.circuit import QuantumCircuit

        circuit = QuantumCircuit(3, name="repeated")
        for _ in range(8):
            circuit.h(0)
            circuit.cx(0, 1)
            circuit.t(2)
        for cutoff in (0, 2):
            package = DDPackage(3, dense_cutoff=cutoff)
            circuit_to_unitary_dd(package, circuit)
            statistics = package.statistics()
            assert statistics["gate_cache_misses"] == 3
            assert statistics["gate_cache_hits"] == 21
            assert statistics["gate_cache_size"] == 3

    def test_lru_eviction_counters_unchanged_by_refactor(self):
        from repro.circuit import QuantumCircuit

        circuit = QuantumCircuit(3)
        for _ in range(4):
            circuit.h(0)
            circuit.cx(0, 1)
            circuit.t(2)
        package = DDPackage(3, gate_cache_size=2)
        circuit_to_unitary_dd(package, circuit)
        statistics = package.statistics()
        assert statistics["gate_cache_size"] <= 2
        assert statistics["gate_cache_evictions"] >= 1


class TestBasisStateValidation:
    def test_rejects_non_binary_bits(self):
        package = DDPackage(3)
        with pytest.raises(DDError, match="must be 0 or 1"):
            package.basis_state([0, 1, 2])

    def test_rejects_wrong_length(self):
        package = DDPackage(3)
        with pytest.raises(DDError, match="expected 3 bits"):
            package.basis_state([0, 1])

    def test_accepts_valid_bits(self):
        package = DDPackage(3)
        vector = package.vector_to_numpy(package.basis_state([1, 1, 0]))
        assert vector[0b011] == pytest.approx(1.0)


class TestMemoizedQueries:
    def test_trace_of_identity_is_linear_not_exponential(self):
        # Without the per-node memo this recursion is 2**64 calls.
        package = DDPackage(64)
        assert package.trace(package.identity()) == pytest.approx(2.0**64)

    def test_trace_matches_numpy(self):
        circuit = random_static_circuit(3, 5, seed=11)
        package = DDPackage(3)
        unitary = circuit_to_unitary_dd(package, circuit)
        assert package.trace(unitary) == pytest.approx(
            np.trace(package.matrix_to_numpy(unitary)), abs=1e-8
        )

    def test_probability_of_one_is_linear_on_shared_diagrams(self):
        # A uniform superposition over 48 qubits shares one node per level;
        # without the memo the recursion visits 2**47 paths.
        num_qubits = 48
        package = DDPackage(num_qubits)
        chain = package.operator_chain({qubit: H2 for qubit in range(num_qubits)})
        state = package.multiply_matrix_vector(chain, package.zero_state())
        assert package.probability_of_one(state, 0) == pytest.approx(0.5)
        assert package.probability_of_one(state, num_qubits - 1) == pytest.approx(0.5)


class TestDenseCutoff:
    def test_package_rejects_negative_cutoff(self):
        with pytest.raises(DDError):
            DDPackage(2, dense_cutoff=-1)

    def test_configuration_rejects_negative_cutoff(self):
        with pytest.raises(EquivalenceCheckingError):
            Configuration(dense_cutoff=-1)

    def test_cli_exposes_dense_cutoff(self):
        args = build_parser().parse_args(["verify", "a.qasm", "b.qasm", "--dense-cutoff", "4"])
        assert args.dense_cutoff == 4

    def test_dense_caches_populate_and_clear(self):
        package = DDPackage(3, dense_cutoff=3)
        first = package.operator_chain({0: H2})
        second = package.operator_chain({1: H2})
        package.multiply_matrices(first, second)
        statistics = package.statistics()
        assert statistics["dense_cutoff"] == 3
        assert statistics["dense_matrix_cache"] > 0
        package.clear_caches()
        assert package.statistics()["dense_matrix_cache"] == 0

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_qubits=st.integers(min_value=1, max_value=4),
        depth=st.integers(min_value=0, max_value=6),
        cutoff=st.integers(min_value=1, max_value=5),
    )
    def test_unitaries_numerically_equal_with_and_without_cutoff(
        self, seed, num_qubits, depth, cutoff
    ):
        circuit = random_static_circuit(num_qubits, depth, seed=seed)
        plain = DDPackage(num_qubits)
        hybrid = DDPackage(num_qubits, dense_cutoff=cutoff)
        reference = plain.matrix_to_numpy(circuit_to_unitary_dd(plain, circuit))
        dense = hybrid.matrix_to_numpy(circuit_to_unitary_dd(hybrid, circuit))
        assert np.allclose(dense, reference, atol=1e-10)

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_qubits=st.integers(min_value=1, max_value=4),
        depth=st.integers(min_value=0, max_value=6),
        cutoff=st.integers(min_value=1, max_value=5),
    )
    def test_states_numerically_equal_with_and_without_cutoff(
        self, seed, num_qubits, depth, cutoff
    ):
        circuit = random_static_circuit(num_qubits, depth, seed=seed)
        plain = DDSimulator().run(circuit, package=DDPackage(num_qubits))
        hybrid = DDSimulator().run(
            circuit, package=DDPackage(num_qubits, dense_cutoff=cutoff)
        )
        assert np.allclose(
            plain.to_statevector(), hybrid.to_statevector(), atol=1e-10
        )

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_qubits=st.integers(min_value=1, max_value=4),
        cutoff=st.integers(min_value=1, max_value=5),
        equivalent=st.booleans(),
    )
    def test_verdicts_identical_with_and_without_cutoff(
        self, seed, num_qubits, cutoff, equivalent
    ):
        first = random_static_circuit(num_qubits, 4, seed=seed)
        if equivalent:
            second = random_static_circuit(num_qubits, 4, seed=seed)
        else:
            second = random_static_circuit(num_qubits, 5, seed=seed + 1)
        plain = check_equivalence(first, second, dense_cutoff=0)
        hybrid = check_equivalence(first, second, dense_cutoff=cutoff)
        assert plain.criterion is hybrid.criterion
