"""Tests for the decision-diagram package (states, operators, arithmetic)."""

import math

import numpy as np
import pytest

from repro.dd.package import DDPackage
from repro.exceptions import DDError

H2 = np.array([[1, 1], [1, -1]], dtype=complex) / math.sqrt(2)
X2 = np.array([[0, 1], [1, 0]], dtype=complex)
Z2 = np.array([[1, 0], [0, -1]], dtype=complex)
P0 = np.array([[1, 0], [0, 0]], dtype=complex)


class TestStates:
    def test_zero_state(self):
        package = DDPackage(3)
        vector = package.vector_to_numpy(package.zero_state())
        expected = np.zeros(8)
        expected[0] = 1
        assert np.allclose(vector, expected)

    def test_basis_state_from_int(self):
        package = DDPackage(3)
        vector = package.vector_to_numpy(package.basis_state(5))
        assert vector[5] == pytest.approx(1.0)
        assert np.count_nonzero(vector) == 1

    def test_basis_state_from_bits(self):
        package = DDPackage(3)
        vector = package.vector_to_numpy(package.basis_state([1, 0, 1]))
        assert vector[0b101] == pytest.approx(1.0)

    def test_basis_state_out_of_range(self):
        package = DDPackage(2)
        with pytest.raises(DDError):
            package.basis_state(7)

    def test_vector_from_numpy_roundtrip(self):
        package = DDPackage(3)
        rng = np.random.default_rng(0)
        amplitudes = rng.normal(size=8) + 1j * rng.normal(size=8)
        amplitudes /= np.linalg.norm(amplitudes)
        edge = package.vector_from_numpy(amplitudes)
        assert np.allclose(package.vector_to_numpy(edge), amplitudes, atol=1e-12)

    def test_basis_state_node_count_is_linear(self):
        package = DDPackage(20)
        edge = package.basis_state(0)
        assert package.count_nodes(edge) == 20


class TestOperators:
    def test_identity(self):
        package = DDPackage(3)
        assert np.allclose(package.matrix_to_numpy(package.identity()), np.eye(8))

    def test_operator_chain_single(self):
        package = DDPackage(2)
        chain = package.operator_chain({0: X2})
        expected = np.kron(np.eye(2), X2)
        assert np.allclose(package.matrix_to_numpy(chain), expected)

    def test_operator_chain_multiple(self):
        package = DDPackage(3)
        chain = package.operator_chain({0: H2, 2: Z2})
        expected = np.kron(Z2, np.kron(np.eye(2), H2))
        assert np.allclose(package.matrix_to_numpy(chain), expected)

    def test_controlled_gate_positive_control(self):
        package = DDPackage(2)
        gate = package.controlled_gate(X2, target=1, controls={0: 1})
        from repro.circuit.gates import CXGate
        from repro.simulators.unitary import embed_gate_matrix

        expected = embed_gate_matrix(CXGate().matrix, [0, 1], 2)
        assert np.allclose(package.matrix_to_numpy(gate), expected)

    def test_controlled_gate_negative_control(self):
        package = DDPackage(2)
        gate = package.controlled_gate(X2, target=1, controls={0: 0})
        dense = package.matrix_to_numpy(gate)
        # X applied to qubit 1 when qubit 0 is |0>: |00> -> |10>.
        assert dense[0b10, 0b00] == pytest.approx(1.0)
        assert dense[0b01, 0b01] == pytest.approx(1.0)

    def test_multi_controlled_gate(self):
        package = DDPackage(3)
        gate = package.controlled_gate(X2, target=2, controls={0: 1, 1: 1})
        from repro.circuit.gates import CCXGate
        from repro.simulators.unitary import embed_gate_matrix

        expected = embed_gate_matrix(CCXGate().matrix, [0, 1, 2], 3)
        assert np.allclose(package.matrix_to_numpy(gate), expected)

    def test_identity_node_count_is_linear(self):
        package = DDPackage(30)
        assert package.count_nodes(package.identity()) == 30

    def test_controlled_gate_rejects_target_in_controls(self):
        package = DDPackage(2)
        with pytest.raises(DDError):
            package.controlled_gate(X2, target=0, controls={0: 1})

    def test_controlled_gate_rejects_bad_activation(self):
        package = DDPackage(2)
        with pytest.raises(DDError):
            package.controlled_gate(X2, target=0, controls={1: 2})

    def test_operator_chain_rejects_bad_shape(self):
        package = DDPackage(1)
        with pytest.raises(DDError):
            package.operator_chain({0: np.eye(4)})


class TestArithmetic:
    def test_matrix_vector_multiplication(self):
        package = DDPackage(2)
        rng = np.random.default_rng(1)
        amplitudes = rng.normal(size=4) + 1j * rng.normal(size=4)
        vector = package.vector_from_numpy(amplitudes)
        gate = package.controlled_gate(H2, target=0, controls={1: 1})
        product = package.multiply_matrix_vector(gate, vector)
        expected = package.matrix_to_numpy(gate) @ amplitudes
        assert np.allclose(package.vector_to_numpy(product), expected, atol=1e-10)

    def test_matrix_matrix_multiplication(self):
        package = DDPackage(2)
        a = package.operator_chain({0: H2, 1: X2})
        b = package.controlled_gate(Z2, target=1, controls={0: 1})
        product = package.multiply_matrices(a, b)
        expected = package.matrix_to_numpy(a) @ package.matrix_to_numpy(b)
        assert np.allclose(package.matrix_to_numpy(product), expected, atol=1e-10)

    def test_addition_of_vectors(self):
        package = DDPackage(2)
        rng = np.random.default_rng(2)
        first = rng.normal(size=4) + 1j * rng.normal(size=4)
        second = rng.normal(size=4) + 1j * rng.normal(size=4)
        total = package.add_vectors(
            package.vector_from_numpy(first), package.vector_from_numpy(second)
        )
        assert np.allclose(package.vector_to_numpy(total), first + second, atol=1e-10)

    def test_addition_of_matrices(self):
        package = DDPackage(2)
        a = package.operator_chain({0: X2})
        b = package.operator_chain({1: Z2})
        total = package.add_matrices(a, b)
        expected = package.matrix_to_numpy(a) + package.matrix_to_numpy(b)
        assert np.allclose(package.matrix_to_numpy(total), expected, atol=1e-10)

    def test_addition_with_zero_edge(self):
        package = DDPackage(1)
        state = package.basis_state(1)
        total = package.add_vectors(state, package.zero_vector_edge())
        assert np.allclose(package.vector_to_numpy(total), [0, 1])

    def test_scaling(self):
        package = DDPackage(1)
        scaled = package.scale_vector(package.basis_state(0), 0.5j)
        assert np.allclose(package.vector_to_numpy(scaled), [0.5j, 0])

    def test_multiplication_keeps_unitarity(self):
        package = DDPackage(3)
        gate_a = package.controlled_gate(H2, target=1, controls={0: 1})
        gate_b = package.controlled_gate(X2, target=2, controls={1: 1})
        product = package.multiply_matrices(gate_a, gate_b)
        dense = package.matrix_to_numpy(product)
        assert np.allclose(dense @ dense.conj().T, np.eye(8), atol=1e-10)


class TestQueries:
    def test_norm_and_inner_product(self):
        package = DDPackage(2)
        rng = np.random.default_rng(3)
        first = rng.normal(size=4) + 1j * rng.normal(size=4)
        second = rng.normal(size=4) + 1j * rng.normal(size=4)
        edge_first = package.vector_from_numpy(first)
        edge_second = package.vector_from_numpy(second)
        assert package.norm_squared(edge_first) == pytest.approx(np.linalg.norm(first) ** 2)
        assert package.inner_product(edge_first, edge_second) == pytest.approx(
            np.vdot(first, second)
        )

    def test_fidelity(self):
        package = DDPackage(1)
        plus = package.multiply_matrix_vector(
            package.operator_chain({0: H2}), package.zero_state()
        )
        assert package.fidelity(plus, package.zero_state()) == pytest.approx(0.5)

    def test_probability_of_one(self):
        package = DDPackage(2)
        state = package.multiply_matrix_vector(
            package.operator_chain({1: H2}), package.zero_state()
        )
        assert package.probability_of_one(state, 1) == pytest.approx(0.5)
        assert package.probability_of_one(state, 0) == pytest.approx(0.0)

    def test_collapse(self):
        package = DDPackage(2)
        bell = package.multiply_matrix_vector(
            package.controlled_gate(X2, target=1, controls={0: 1}),
            package.multiply_matrix_vector(package.operator_chain({0: H2}), package.zero_state()),
        )
        collapsed = package.collapse(bell, 0, 1)
        assert np.allclose(package.vector_to_numpy(collapsed), [0, 0, 0, 1], atol=1e-10)

    def test_collapse_zero_probability_raises(self):
        package = DDPackage(1)
        with pytest.raises(DDError):
            package.collapse(package.zero_state(), 0, 1)

    def test_apply_reset_branches(self):
        package = DDPackage(1)
        plus = package.multiply_matrix_vector(
            package.operator_chain({0: H2}), package.zero_state()
        )
        branches = package.apply_reset(plus, 0)
        assert len(branches) == 2
        for probability, edge in branches:
            assert probability == pytest.approx(0.5)
            assert np.allclose(package.vector_to_numpy(edge), [1, 0], atol=1e-10)

    def test_trace(self):
        package = DDPackage(2)
        assert package.trace(package.identity()) == pytest.approx(4.0)
        assert package.trace(package.operator_chain({0: Z2})) == pytest.approx(0.0)

    def test_max_entry_magnitude(self):
        package = DDPackage(2)
        chain = package.operator_chain({0: 2.0 * X2})
        assert package.max_entry_magnitude(chain) == pytest.approx(2.0)

    def test_identity_detection(self):
        package = DDPackage(3)
        assert package.is_identity(package.identity())
        assert package.is_identity(package.scale_matrix(package.identity(), np.exp(0.3j)))
        assert not package.is_identity(
            package.scale_matrix(package.identity(), np.exp(0.3j)), up_to_global_phase=False
        )
        assert not package.is_identity(package.operator_chain({1: X2}))
        assert not package.is_identity(package.scale_matrix(package.identity(), 2.0))

    def test_identity_scalar_of_projector_is_none(self):
        package = DDPackage(2)
        assert package.identity_scalar(package.operator_chain({0: P0})) is None

    def test_statistics_and_cache_clear(self):
        package = DDPackage(2)
        package.multiply_matrices(package.identity(), package.operator_chain({0: H2}))
        stats = package.statistics()
        assert stats["matrix_nodes"] > 0
        package.clear_caches()
        assert len(package._mult_mm) == 0


class TestValidation:
    def test_zero_qubits_raises(self):
        with pytest.raises(DDError):
            DDPackage(0)

    def test_add_different_depths_raises(self):
        small = DDPackage(1)
        with pytest.raises(DDError):
            small.add_vectors(small.basis_state(0), small.zero_state().node.edges[0])

    def test_probability_out_of_range_raises(self):
        package = DDPackage(1)
        with pytest.raises(DDError):
            package.probability_of_one(package.zero_state(), 3)
