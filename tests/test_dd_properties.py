"""Property-based tests of the decision-diagram package (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.random_circuits import random_static_circuit
from repro.dd.circuits import circuit_to_unitary_dd
from repro.dd.package import DDPackage
from repro.simulators.dd_simulator import DDSimulator
from repro.simulators.statevector import StatevectorSimulator
from repro.simulators.unitary import circuit_unitary

MAX_EXAMPLES = 20


def _random_amplitudes(rng: np.random.Generator, num_qubits: int) -> np.ndarray:
    size = 1 << num_qubits
    amplitudes = rng.normal(size=size) + 1j * rng.normal(size=size)
    return amplitudes / np.linalg.norm(amplitudes)


class TestAgainstDenseBackend:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_qubits=st.integers(min_value=1, max_value=4),
        depth=st.integers(min_value=0, max_value=6),
    )
    def test_circuit_unitaries_agree(self, seed, num_qubits, depth):
        circuit = random_static_circuit(num_qubits, depth, seed=seed)
        package = DDPackage(num_qubits)
        dd_matrix = package.matrix_to_numpy(circuit_to_unitary_dd(package, circuit))
        assert np.allclose(dd_matrix, circuit_unitary(circuit), atol=1e-8)

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_qubits=st.integers(min_value=1, max_value=4),
        depth=st.integers(min_value=0, max_value=6),
    )
    def test_simulated_states_agree(self, seed, num_qubits, depth):
        circuit = random_static_circuit(num_qubits, depth, seed=seed)
        dd_state = DDSimulator().run(circuit).to_statevector()
        dense_state = StatevectorSimulator().run(circuit).data
        assert np.allclose(dd_state, dense_state, atol=1e-8)

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_qubits=st.integers(min_value=1, max_value=4),
    )
    def test_unitarity_of_circuit_dds(self, seed, num_qubits):
        circuit = random_static_circuit(num_qubits, 4, seed=seed)
        package = DDPackage(num_qubits)
        dense = package.matrix_to_numpy(circuit_to_unitary_dd(package, circuit))
        assert np.allclose(dense @ dense.conj().T, np.eye(1 << num_qubits), atol=1e-8)


class TestAlgebraicInvariants:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000), num_qubits=st.integers(min_value=1, max_value=4))
    def test_addition_commutes(self, seed, num_qubits):
        rng = np.random.default_rng(seed)
        package = DDPackage(num_qubits)
        first = _random_amplitudes(rng, num_qubits)
        second = _random_amplitudes(rng, num_qubits)
        left = package.add_vectors(
            package.vector_from_numpy(first), package.vector_from_numpy(second)
        )
        right = package.add_vectors(
            package.vector_from_numpy(second), package.vector_from_numpy(first)
        )
        assert np.allclose(
            package.vector_to_numpy(left), package.vector_to_numpy(right), atol=1e-9
        )

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000), num_qubits=st.integers(min_value=1, max_value=3))
    def test_norm_is_preserved_by_unitaries(self, seed, num_qubits):
        rng = np.random.default_rng(seed)
        package = DDPackage(num_qubits)
        circuit = random_static_circuit(num_qubits, 4, seed=seed)
        gate = circuit_to_unitary_dd(package, circuit)
        state = package.vector_from_numpy(_random_amplitudes(rng, num_qubits))
        evolved = package.multiply_matrix_vector(gate, state)
        np.testing.assert_allclose(package.norm_squared(evolved), 1.0, atol=1e-9)

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000), num_qubits=st.integers(min_value=1, max_value=3))
    def test_inner_product_matches_numpy(self, seed, num_qubits):
        rng = np.random.default_rng(seed)
        package = DDPackage(num_qubits)
        first = _random_amplitudes(rng, num_qubits)
        second = _random_amplitudes(rng, num_qubits)
        dd_value = package.inner_product(
            package.vector_from_numpy(first), package.vector_from_numpy(second)
        )
        assert abs(dd_value - np.vdot(first, second)) < 1e-9

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_qubits=st.integers(min_value=1, max_value=3),
        qubit=st.integers(min_value=0, max_value=2),
    )
    def test_measurement_probabilities_match_numpy(self, seed, num_qubits, qubit):
        if qubit >= num_qubits:
            qubit = num_qubits - 1
        rng = np.random.default_rng(seed)
        package = DDPackage(num_qubits)
        amplitudes = _random_amplitudes(rng, num_qubits)
        edge = package.vector_from_numpy(amplitudes)
        expected = sum(
            abs(amplitudes[index]) ** 2
            for index in range(1 << num_qubits)
            if (index >> qubit) & 1
        )
        np.testing.assert_allclose(package.probability_of_one(edge, qubit), expected, atol=1e-9)


class TestCanonicity:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000), num_qubits=st.integers(min_value=1, max_value=4))
    def test_same_circuit_gives_identical_root_node(self, seed, num_qubits):
        circuit = random_static_circuit(num_qubits, 3, seed=seed)
        package = DDPackage(num_qubits)
        first = circuit_to_unitary_dd(package, circuit)
        second = circuit_to_unitary_dd(package, circuit)
        assert first.node is second.node
        assert abs(first.weight - second.weight) < 1e-9
