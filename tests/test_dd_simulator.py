"""Tests for the decision-diagram simulator backend."""

import numpy as np
import pytest

from repro.circuit import QuantumCircuit
from repro.circuit.gates import HGate, XGate
from repro.exceptions import SimulationError
from repro.simulators.dd_simulator import DDSimulator, DDState
from repro.simulators.statevector import StatevectorSimulator


def bell_circuit() -> QuantumCircuit:
    circuit = QuantumCircuit(2, 2)
    circuit.h(0)
    circuit.cx(0, 1)
    return circuit


class TestDDState:
    def test_zero_state(self):
        state = DDState.zero_state(3)
        assert np.allclose(state.to_statevector(), [1] + [0] * 7)

    def test_basis_state_and_bitstring(self):
        assert np.allclose(DDState.basis_state(2, 2).to_statevector(), [0, 0, 1, 0])
        assert np.allclose(DDState.from_bitstring("10").to_statevector(), [0, 0, 1, 0])

    def test_apply_gate(self):
        state = DDState.zero_state(1).apply_gate(XGate(), [0])
        assert np.allclose(state.to_statevector(), [0, 1])

    def test_probability_and_collapse(self):
        state = DDState.zero_state(1).apply_gate(HGate(), [0])
        assert state.probability_of_one(0) == pytest.approx(0.5)
        collapsed = state.collapse(0, 1)
        assert np.allclose(collapsed.to_statevector(), [0, 1])

    def test_reset_outcomes(self):
        state = DDState.zero_state(1).apply_gate(HGate(), [0])
        branches = state.reset_qubit_outcomes(0)
        assert len(branches) == 2
        assert all(np.allclose(s.to_statevector(), [1, 0]) for _, s in branches)

    def test_probabilities_dict(self):
        state = DDSimulator().run(bell_circuit())
        assert state.probabilities_dict() == pytest.approx({"00": 0.5, "11": 0.5})

    def test_fidelity_within_same_package(self):
        state = DDSimulator().run(bell_circuit())
        other = DDState.zero_state(2, state.package)
        assert state.fidelity(other) == pytest.approx(0.5)

    def test_fidelity_across_packages_raises(self):
        first = DDState.zero_state(1)
        second = DDState.zero_state(1)
        with pytest.raises(SimulationError):
            first.fidelity(second)

    def test_apply_instruction_rejects_dynamic(self):
        circuit = QuantumCircuit(1, 1)
        instruction = circuit.measure(0, 0)
        with pytest.raises(SimulationError):
            DDState.zero_state(1).apply_instruction(instruction)

    def test_num_nodes(self):
        # Bell state: one node on the top level, two distinct successors below.
        state = DDSimulator().run(bell_circuit())
        assert state.num_nodes == 3


class TestDDSimulator:
    def test_matches_statevector_backend(self):
        from repro.circuit.random_circuits import random_static_circuit

        for seed in range(3):
            circuit = random_static_circuit(4, 4, seed=seed)
            dd_state = DDSimulator().run(circuit).to_statevector()
            dense = StatevectorSimulator().run(circuit).data
            assert np.allclose(dd_state, dense, atol=1e-8)

    def test_initial_state_options(self):
        circuit = QuantumCircuit(2)
        circuit.cx(1, 0)
        state = DDSimulator().run(circuit, "10")
        assert np.allclose(state.to_statevector(), DDState.from_bitstring("11").to_statevector())
        state = DDSimulator().run(circuit, 2)
        assert np.allclose(state.to_statevector(), DDState.from_bitstring("11").to_statevector())

    def test_rejects_dynamic_circuits(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        circuit.x(0, condition=(0, 1))
        with pytest.raises(SimulationError):
            DDSimulator().run(circuit)

    def test_initial_state_size_mismatch(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(SimulationError):
            DDSimulator().run(circuit, DDState.zero_state(3))

    def test_large_sparse_circuit_stays_compact(self):
        # A 60-qubit GHZ state has a linear-size decision diagram.
        from repro.algorithms import ghz_ladder

        state = DDSimulator().run(ghz_ladder(60))
        assert state.num_nodes <= 2 * 60
        assert state.probability_of_one(59) == pytest.approx(0.5)
