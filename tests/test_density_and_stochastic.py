"""Tests for the density-matrix ensemble and stochastic trajectory baselines."""

import pytest

from repro.algorithms import iterative_qpe, running_example_lambda, teleportation_dynamic
from repro.circuit import QuantumCircuit
from repro.core.distributions import total_variation_distance
from repro.core.extraction import extract_distribution
from repro.exceptions import SimulationError
from repro.simulators.density_matrix import DensityMatrixSimulator
from repro.simulators.stochastic import StochasticSimulator


def measured_bell() -> QuantumCircuit:
    circuit = QuantumCircuit(2, 2)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.measure_all()
    return circuit


class TestDensityMatrixSimulator:
    def test_bell_distribution(self):
        distribution = DensityMatrixSimulator().run(measured_bell())
        assert distribution == pytest.approx({"00": 0.5, "11": 0.5})

    def test_reset_produces_zero(self):
        circuit = QuantumCircuit(1, 1)
        circuit.h(0)
        circuit.reset(0)
        circuit.measure(0, 0)
        distribution = DensityMatrixSimulator().run(circuit)
        assert distribution == pytest.approx({"0": 1.0})

    def test_classically_controlled_operation(self):
        circuit = QuantumCircuit(2, 2)
        circuit.x(0)
        circuit.measure(0, 0)
        circuit.x(1, condition=(0, 1))
        circuit.measure(1, 1)
        distribution = DensityMatrixSimulator().run(circuit)
        assert distribution == pytest.approx({"11": 1.0})

    def test_agrees_with_extraction_on_iqpe(self):
        circuit = iterative_qpe(3, running_example_lambda)
        dm = DensityMatrixSimulator().run(circuit)
        extracted = extract_distribution(circuit).distribution
        assert total_variation_distance(dm, extracted) < 1e-9

    def test_agrees_with_extraction_on_teleportation(self):
        circuit = teleportation_dynamic()
        dm = DensityMatrixSimulator().run(circuit)
        extracted = extract_distribution(circuit).distribution
        assert total_variation_distance(dm, extracted) < 1e-9

    def test_initial_state_options(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        assert DensityMatrixSimulator().run(circuit, "1") == pytest.approx({"1": 1.0})
        assert DensityMatrixSimulator().run(circuit, 1) == pytest.approx({"1": 1.0})

    def test_qubit_limit(self):
        simulator = DensityMatrixSimulator(max_qubits=2)
        circuit = QuantumCircuit(3, 1)
        circuit.measure(0, 0)
        with pytest.raises(SimulationError):
            simulator.run(circuit)

    def test_unmeasured_qubits_do_not_blow_up_keys(self):
        circuit = QuantumCircuit(2, 1)
        circuit.h(0)
        circuit.h(1)
        circuit.measure(0, 0)
        distribution = DensityMatrixSimulator().run(circuit)
        assert distribution == pytest.approx({"0": 0.5, "1": 0.5})


class TestStochasticSimulator:
    def test_counts_sum_to_shots(self):
        counts = StochasticSimulator(seed=1).run(measured_bell(), shots=100)
        assert sum(counts.values()) == 100
        assert set(counts) <= {"00", "11"}

    def test_deterministic_dynamic_circuit(self):
        circuit = QuantumCircuit(2, 2)
        circuit.x(0)
        circuit.measure(0, 0)
        circuit.x(1, condition=(0, 1))
        circuit.measure(1, 1)
        counts = StochasticSimulator(seed=2).run(circuit, shots=50)
        assert counts == {"11": 50}

    def test_reset_handling(self):
        circuit = QuantumCircuit(1, 1)
        circuit.h(0)
        circuit.reset(0)
        circuit.measure(0, 0)
        counts = StochasticSimulator(seed=3).run(circuit, shots=20)
        assert counts == {"0": 20}

    def test_estimate_distribution_approaches_exact(self):
        circuit = iterative_qpe(2, running_example_lambda)
        exact = extract_distribution(circuit).distribution
        estimate = StochasticSimulator(seed=4).estimate_distribution(circuit, shots=4000)
        assert total_variation_distance(exact, estimate) < 0.05

    def test_invalid_shots(self):
        with pytest.raises(SimulationError):
            StochasticSimulator().run(measured_bell(), shots=0)

    def test_single_shot_returns_state(self):
        outcome, state = StochasticSimulator(seed=5).run_single_shot(measured_bell())
        assert outcome in {"00", "11"}
        assert state.num_qubits == 2
