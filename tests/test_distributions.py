"""Tests for the distribution-comparison metrics."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distributions import (
    classical_fidelity,
    distributions_equivalent,
    hellinger_distance,
    jensen_shannon_divergence,
    kullback_leibler_divergence,
    normalize_distribution,
    total_variation_distance,
)


@st.composite
def distributions(draw, size=4):
    weights = draw(
        st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=size, max_size=size)
    )
    total = sum(weights)
    if total == 0:
        weights = [1.0] * size
        total = float(size)
    keys = [format(k, f"0{size.bit_length()}b") for k in range(size)]
    return {key: weight / total for key, weight in zip(keys, weights)}


class TestTotalVariationDistance:
    def test_identical_distributions(self):
        p = {"00": 0.5, "11": 0.5}
        assert total_variation_distance(p, p) == 0.0

    def test_disjoint_distributions(self):
        assert total_variation_distance({"0": 1.0}, {"1": 1.0}) == pytest.approx(1.0)

    def test_known_value(self):
        p = {"0": 0.75, "1": 0.25}
        q = {"0": 0.5, "1": 0.5}
        assert total_variation_distance(p, q) == pytest.approx(0.25)

    @settings(max_examples=30, deadline=None)
    @given(distributions(), distributions())
    def test_symmetry_and_bounds(self, p, q):
        distance = total_variation_distance(p, q)
        assert 0.0 <= distance <= 1.0 + 1e-12
        assert distance == pytest.approx(total_variation_distance(q, p))

    @settings(max_examples=30, deadline=None)
    @given(distributions(), distributions(), distributions())
    def test_triangle_inequality(self, p, q, r):
        assert total_variation_distance(p, r) <= (
            total_variation_distance(p, q) + total_variation_distance(q, r) + 1e-12
        )


class TestFidelity:
    def test_identical_distributions(self):
        p = {"00": 0.3, "01": 0.7}
        assert classical_fidelity(p, p) == pytest.approx(1.0)

    def test_disjoint_distributions(self):
        assert classical_fidelity({"0": 1.0}, {"1": 1.0}) == 0.0

    def test_known_value(self):
        p = {"0": 0.5, "1": 0.5}
        q = {"0": 1.0}
        assert classical_fidelity(p, q) == pytest.approx(0.5)

    @settings(max_examples=30, deadline=None)
    @given(distributions(), distributions())
    def test_bounds_and_symmetry(self, p, q):
        fidelity = classical_fidelity(p, q)
        assert 0.0 <= fidelity <= 1.0 + 1e-9
        assert fidelity == pytest.approx(classical_fidelity(q, p))

    @settings(max_examples=30, deadline=None)
    @given(distributions(), distributions())
    def test_fidelity_tvd_inequality(self, p, q):
        # 1 - sqrt(F) <= TVD <= sqrt(1 - F)
        fidelity = classical_fidelity(p, q)
        distance = total_variation_distance(p, q)
        assert 1.0 - math.sqrt(fidelity) <= distance + 1e-9
        assert distance <= math.sqrt(max(0.0, 1.0 - fidelity)) + 1e-9


class TestOtherMetrics:
    def test_hellinger_zero_for_equal(self):
        p = {"0": 0.4, "1": 0.6}
        assert hellinger_distance(p, p) == pytest.approx(0.0, abs=1e-9)

    def test_kl_divergence_zero_for_equal(self):
        p = {"0": 0.4, "1": 0.6}
        assert kullback_leibler_divergence(p, p) == pytest.approx(0.0, abs=1e-9)

    def test_kl_divergence_positive(self):
        p = {"0": 0.9, "1": 0.1}
        q = {"0": 0.5, "1": 0.5}
        assert kullback_leibler_divergence(p, q) > 0.0

    def test_jensen_shannon_symmetric_and_bounded(self):
        p = {"0": 1.0}
        q = {"1": 1.0}
        js = jensen_shannon_divergence(p, q)
        assert js == pytest.approx(jensen_shannon_divergence(q, p))
        assert js == pytest.approx(math.log(2))

    def test_normalize_distribution(self):
        normalized = normalize_distribution({"0": 2.0, "1": 2.0, "2": 0.0})
        assert normalized == pytest.approx({"0": 0.5, "1": 0.5})

    def test_normalize_empty_raises(self):
        with pytest.raises(ValueError):
            normalize_distribution({"0": 0.0})

    def test_distributions_equivalent(self):
        p = {"0": 0.5, "1": 0.5}
        q = {"0": 0.5 + 1e-10, "1": 0.5 - 1e-10}
        assert distributions_equivalent(p, q)
        assert not distributions_equivalent(p, {"0": 1.0})
