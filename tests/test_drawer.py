"""Tests for the plain-text circuit drawer."""

from repro.algorithms import iterative_qpe, qpe_static, teleportation_dynamic
from repro.circuit import QuantumCircuit


class TestDrawerBasics:
    def test_every_qubit_and_clbit_gets_a_row(self):
        circuit = QuantumCircuit(3, 2)
        circuit.h(0)
        drawing = circuit.draw()
        lines = drawing.splitlines()
        assert len(lines) == 5
        assert lines[0].startswith("q0:")
        assert lines[-1].startswith("c1:")

    def test_empty_circuit(self):
        drawing = QuantumCircuit(2, 1).draw()
        assert "q0:" in drawing and "c0:" in drawing

    def test_parameterized_gate_label(self):
        circuit = QuantumCircuit(1)
        circuit.rz(0.5, 0)
        assert "rz(0.5)" in circuit.draw()

    def test_controlled_gate_markers(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        drawing = circuit.draw()
        assert "*" in drawing  # control
        assert "X" in drawing  # target

    def test_negative_control_marker(self):
        from repro.circuit.gates import CXGate

        circuit = QuantumCircuit(2)
        circuit.append(CXGate(ctrl_state=0), [0, 1])
        assert "o" in circuit.draw()

    def test_measurement_and_reset_markers(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        circuit.reset(0)
        drawing = circuit.draw()
        assert "M" in drawing
        assert "0" in drawing

    def test_barrier_marker(self):
        circuit = QuantumCircuit(2)
        circuit.barrier()
        assert "|" in circuit.draw()

    def test_condition_marker_on_classical_wire(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        circuit.x(0, condition=(0, 1))
        # The deferred qubit reuse does not matter for drawing.
        assert "?" in circuit.draw()

    def test_rows_have_equal_length(self):
        for circuit in (iterative_qpe(3), qpe_static(3), teleportation_dynamic()):
            lines = circuit.draw().splitlines()
            assert len({len(line) for line in lines}) == 1
