"""Integration tests: verifying dynamic circuits against their static counterparts.

These tests exercise the full flow of the paper on the three benchmark
families (Bernstein-Vazirani, QFT, QPE): Scheme 1 (unitary reconstruction +
functional check) and Scheme 2 (distribution extraction + behavioural check),
plus negative cases where the dynamic realization is deliberately broken.
"""

import math

import pytest

from repro.algorithms import (
    bernstein_vazirani_dynamic,
    bernstein_vazirani_static,
    iterative_qpe,
    qft_dynamic,
    qft_static_benchmark,
    qpe_static,
    running_example_lambda,
    teleportation_dynamic,
    teleportation_static,
)
from repro.circuit import QuantumCircuit
from repro.circuit.random_circuits import random_dynamic_circuit
from repro.core import (
    EquivalenceCriterion,
    check_behavioural_equivalence,
    check_equivalence,
    extract_distribution,
    to_unitary_circuit,
)
from repro.core.distributions import total_variation_distance
from repro.exceptions import EquivalenceCheckingError


class TestScheme1FunctionalVerification:
    @pytest.mark.parametrize("hidden", ["1", "101", "11011"])
    def test_bernstein_vazirani(self, hidden):
        static = bernstein_vazirani_static(hidden)
        dynamic = bernstein_vazirani_dynamic(hidden)
        result = check_equivalence(static, dynamic)
        assert result.equivalent
        if dynamic.is_dynamic:
            assert result.time_transformation > 0.0

    @pytest.mark.parametrize("num_qubits", [2, 3, 4])
    def test_qft(self, num_qubits):
        static = qft_static_benchmark(num_qubits)
        dynamic = qft_dynamic(num_qubits)
        assert check_equivalence(static, dynamic).equivalent

    @pytest.mark.parametrize("num_bits", [2, 3, 4])
    def test_qpe(self, num_bits):
        static = qpe_static(num_bits, running_example_lambda)
        dynamic = iterative_qpe(num_bits, running_example_lambda)
        assert check_equivalence(static, dynamic).equivalent

    def test_qpe_with_random_phase(self):
        lam = 2.0 * math.pi * 0.2371
        assert check_equivalence(qpe_static(3, lam), iterative_qpe(3, lam)).equivalent

    def test_teleportation(self):
        assert check_equivalence(teleportation_static(), teleportation_dynamic()).equivalent

    @pytest.mark.parametrize("strategy", ["naive", "one_to_one", "proportional", "lookahead"])
    def test_strategies_on_dynamic_input(self, strategy):
        static = qpe_static(3, running_example_lambda)
        dynamic = iterative_qpe(3, running_example_lambda)
        assert check_equivalence(static, dynamic, strategy=strategy).equivalent

    def test_wrong_hidden_string_detected(self):
        static = bernstein_vazirani_static("101")
        dynamic = bernstein_vazirani_dynamic("111")
        result = check_equivalence(static, dynamic)
        assert result.criterion is EquivalenceCriterion.NOT_EQUIVALENT

    def test_wrong_phase_detected(self):
        static = qpe_static(3, running_example_lambda)
        dynamic = iterative_qpe(3, running_example_lambda + 0.01)
        assert not check_equivalence(static, dynamic).equivalent

    def test_missing_correction_rotation_detected(self):
        """Dropping one classically-controlled correction breaks equivalence."""
        static = qpe_static(3, running_example_lambda)
        dynamic = iterative_qpe(3, running_example_lambda)
        stripped = dynamic.copy_empty()
        removed = False
        for instruction in dynamic:
            if not removed and instruction.is_classically_controlled:
                removed = True
                continue
            stripped.append_instruction(instruction)
        assert not check_equivalence(static, stripped).equivalent

    def test_transform_disabled_raises(self):
        with pytest.raises(EquivalenceCheckingError):
            check_equivalence(
                qpe_static(2), iterative_qpe(2), transform_dynamic=False
            )

    def test_dynamic_vs_dynamic(self):
        first = iterative_qpe(3, running_example_lambda)
        second = iterative_qpe(3, running_example_lambda)
        assert check_equivalence(first, second).equivalent

    def test_qubit_count_mismatch_after_transformation(self):
        # 3-bit static QPE vs 2-bit dynamic QPE: different primary inputs.
        with pytest.raises(EquivalenceCheckingError):
            check_equivalence(qpe_static(3), iterative_qpe(2))


class TestScheme2BehaviouralVerification:
    @pytest.mark.parametrize("hidden", ["1", "101", "1101"])
    def test_bernstein_vazirani(self, hidden):
        result = check_behavioural_equivalence(
            bernstein_vazirani_static(hidden), bernstein_vazirani_dynamic(hidden)
        )
        assert result.equivalent
        assert result.details["total_variation_distance"] < 1e-9

    @pytest.mark.parametrize("num_qubits", [2, 3])
    def test_qft(self, num_qubits):
        result = check_behavioural_equivalence(
            qft_static_benchmark(num_qubits), qft_dynamic(num_qubits)
        )
        assert result.equivalent

    @pytest.mark.parametrize("num_bits", [2, 3, 4])
    def test_qpe(self, num_bits):
        result = check_behavioural_equivalence(
            qpe_static(num_bits, running_example_lambda),
            iterative_qpe(num_bits, running_example_lambda),
        )
        assert result.equivalent
        assert result.details["classical_fidelity"] == pytest.approx(1.0)

    def test_teleportation(self):
        assert check_behavioural_equivalence(
            teleportation_static(), teleportation_dynamic()
        ).equivalent

    def test_dd_backend(self):
        result = check_behavioural_equivalence(
            qpe_static(3, running_example_lambda),
            iterative_qpe(3, running_example_lambda),
            backend="dd",
        )
        assert result.equivalent
        assert result.backend == "dd"

    def test_wrong_phase_detected(self):
        result = check_behavioural_equivalence(
            qpe_static(3, running_example_lambda),
            iterative_qpe(3, running_example_lambda + 0.5),
        )
        assert not result.equivalent

    def test_clbit_mismatch_raises(self):
        with pytest.raises(EquivalenceCheckingError):
            check_behavioural_equivalence(qpe_static(3), iterative_qpe(2))


class TestSchemesAgree:
    """Scheme 1 and Scheme 2 must agree whenever both are applicable."""

    @pytest.mark.parametrize("seed", range(4))
    def test_random_dynamic_circuit_against_its_reconstruction(self, seed):
        dynamic = random_dynamic_circuit(3, 6, seed=seed, num_measurements=2)
        reconstructed = to_unitary_circuit(dynamic).circuit
        functional = check_equivalence(reconstructed, dynamic)
        behavioural = check_behavioural_equivalence(reconstructed, dynamic)
        assert functional.equivalent
        assert behavioural.equivalent

    @pytest.mark.parametrize("seed", range(3))
    def test_reconstruction_preserves_distribution(self, seed):
        dynamic = random_dynamic_circuit(3, 5, seed=seed, num_measurements=3)
        reconstructed = to_unitary_circuit(dynamic).circuit
        original = extract_distribution(dynamic).distribution
        deferred = extract_distribution(reconstructed).distribution
        assert total_variation_distance(original, deferred) < 1e-9

    def test_behavioural_equivalence_without_functional_equivalence(self):
        """The GHZ ladder/fan-out pair: same behaviour on |0...0>, different unitaries."""
        from repro.algorithms import ghz_fanout, ghz_ladder

        ladder = ghz_ladder(3, measure=True)
        fanout = ghz_fanout(3, measure=True)
        assert not check_equivalence(ladder, fanout).equivalent
        assert check_behavioural_equivalence(ladder, fanout).equivalent


class TestPaperTableShape:
    """Sanity checks of the qualitative claims behind Table 1 (small scale)."""

    def test_transformation_cost_is_negligible(self):
        dynamic = iterative_qpe(8, running_example_lambda)
        result = check_equivalence(qpe_static(8, running_example_lambda), dynamic)
        assert result.equivalent
        # t_trans is orders of magnitude below t_ver for QPE (Table 1).
        assert result.time_transformation < result.time_check

    def test_extraction_explores_single_path_for_bv(self):
        result = extract_distribution(bernstein_vazirani_dynamic("1" * 10))
        assert result.num_paths == 1

    def test_extraction_explores_exponentially_many_paths_for_qft(self):
        result = extract_distribution(qft_dynamic(5))
        assert result.num_paths == 2**5

    def test_gate_counts_dynamic_larger_than_static(self):
        # |G| of the dynamic circuit exceeds the static one (as in Table 1).
        static = qpe_static(6, running_example_lambda)
        dynamic = iterative_qpe(6, running_example_lambda)
        assert dynamic.size > 0.8 * static.size
