"""Tests for the equivalence-checking engine on static circuits."""

import math

import pytest

from repro.algorithms import ghz_fanout, ghz_ladder
from repro.circuit import QuantumCircuit
from repro.circuit.random_circuits import random_static_circuit
from repro.core import (
    Configuration,
    EquivalenceChecker,
    EquivalenceCriterion,
    check_equivalence,
    verify,
)
from repro.core.transformation import permute_qubits
from repro.exceptions import EquivalenceCheckingError


def two_realizations_of_swap() -> tuple[QuantumCircuit, QuantumCircuit]:
    direct = QuantumCircuit(2)
    direct.swap(0, 1)
    decomposed = QuantumCircuit(2)
    decomposed.cx(0, 1)
    decomposed.cx(1, 0)
    decomposed.cx(0, 1)
    return direct, decomposed


class TestConfiguration:
    def test_defaults(self):
        config = Configuration()
        assert config.method == "alternating"
        assert config.strategy == "proportional"
        assert config.backend == "dd"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"method": "guessing"},
            {"strategy": "random"},
            {"backend": "gpu"},
            {"tolerance": -1.0},
            {"num_simulations": 0},
            {"stimuli_type": "stabilizer"},
        ],
    )
    def test_invalid_values_raise(self, kwargs):
        with pytest.raises(EquivalenceCheckingError):
            Configuration(**kwargs)

    def test_updated_returns_new_configuration(self):
        config = Configuration()
        updated = config.updated(strategy="naive")
        assert updated.strategy == "naive"
        assert config.strategy == "proportional"


class TestPositiveCases:
    def test_identical_circuits(self):
        circuit = ghz_ladder(3)
        result = check_equivalence(circuit, circuit)
        assert result.criterion is EquivalenceCriterion.EQUIVALENT
        assert result.equivalent

    def test_swap_realizations(self):
        direct, decomposed = two_realizations_of_swap()
        assert check_equivalence(direct, decomposed).equivalent

    def test_global_phase_difference_is_reported(self):
        first = QuantumCircuit(1)
        first.rz(math.pi / 2, 0)
        second = QuantumCircuit(1)
        second.p(math.pi / 2, 0)
        result = check_equivalence(first, second)
        assert result.criterion is EquivalenceCriterion.EQUIVALENT_UP_TO_GLOBAL_PHASE
        assert result.equivalent

    def test_final_measurements_are_ignored(self):
        first = ghz_ladder(3, measure=True)
        second = ghz_ladder(3)
        assert check_equivalence(first, second).equivalent

    def test_inverse_composition_is_identity(self):
        circuit = random_static_circuit(3, 5, seed=9)
        identity = QuantumCircuit(3)
        assert check_equivalence(circuit.compose(circuit.inverse()), identity).equivalent

    def test_verify_alias(self):
        circuit = ghz_fanout(2)
        assert verify(circuit, circuit).equivalent

    @pytest.mark.parametrize("strategy", ["naive", "one_to_one", "proportional", "lookahead"])
    def test_all_strategies_agree(self, strategy):
        direct, decomposed = two_realizations_of_swap()
        result = check_equivalence(direct, decomposed, strategy=strategy)
        assert result.equivalent
        assert result.strategy == strategy

    @pytest.mark.parametrize("method", ["alternating", "construction", "simulation"])
    def test_all_methods_agree(self, method):
        direct, decomposed = two_realizations_of_swap()
        result = check_equivalence(direct, decomposed, method=method, seed=1)
        assert result.equivalent
        assert result.method == method

    @pytest.mark.parametrize("backend", ["dd", "dense"])
    def test_both_backends_agree(self, backend):
        direct, decomposed = two_realizations_of_swap()
        assert check_equivalence(direct, decomposed, backend=backend).equivalent

    def test_qubit_permutation_option(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.cx(0, 2)
        permuted = permute_qubits(circuit, {0: 2, 1: 1, 2: 0})
        assert not check_equivalence(circuit, permuted).equivalent
        assert check_equivalence(circuit, permuted, qubit_permutation={2: 0, 1: 1, 0: 2}).equivalent


class TestNegativeCases:
    def test_different_circuits(self):
        first = QuantumCircuit(1)
        first.x(0)
        second = QuantumCircuit(1)
        second.h(0)
        result = check_equivalence(first, second)
        assert result.criterion is EquivalenceCriterion.NOT_EQUIVALENT
        assert not result.equivalent

    def test_single_missing_gate_detected(self):
        circuit = random_static_circuit(3, 4, seed=2)
        broken = circuit.copy()
        broken.rx(0.3, 1)
        assert not check_equivalence(circuit, broken).equivalent

    def test_ladder_vs_fanout_not_functionally_equivalent(self):
        assert not check_equivalence(ghz_ladder(3), ghz_fanout(3)).equivalent

    @pytest.mark.parametrize("method", ["alternating", "construction", "simulation"])
    def test_negative_verdict_across_methods(self, method):
        first = QuantumCircuit(2)
        first.cx(0, 1)
        second = QuantumCircuit(2)
        second.cx(1, 0)
        result = check_equivalence(first, second, method=method, seed=0)
        assert not result.equivalent

    def test_dense_backend_negative(self):
        first = QuantumCircuit(2)
        first.cz(0, 1)
        second = QuantumCircuit(2)
        assert not check_equivalence(first, second, backend="dense").equivalent

    def test_qubit_count_mismatch_raises(self):
        with pytest.raises(EquivalenceCheckingError):
            check_equivalence(QuantumCircuit(2), QuantumCircuit(3))


class TestResultBookkeeping:
    def test_timings_are_recorded(self):
        direct, decomposed = two_realizations_of_swap()
        result = check_equivalence(direct, decomposed)
        assert result.time_check > 0.0
        assert result.time_transformation == 0.0
        assert result.total_time == result.time_check

    def test_details_contain_dd_statistics(self):
        direct, decomposed = two_realizations_of_swap()
        result = check_equivalence(direct, decomposed)
        assert result.details["num_gates_first"] == 1
        assert result.details["num_gates_second"] == 3
        assert result.details["max_nodes"] >= 1

    def test_str_representation(self):
        direct, decomposed = two_realizations_of_swap()
        text = str(check_equivalence(direct, decomposed))
        assert "equivalent" in text
        assert "t_check" in text

    def test_checker_object_reuse(self):
        checker = EquivalenceChecker(Configuration(strategy="one_to_one"))
        direct, decomposed = two_realizations_of_swap()
        assert checker.run(direct, decomposed).equivalent
        assert checker.run(decomposed, direct).equivalent

    def test_checker_overrides(self):
        checker = EquivalenceChecker(method="construction")
        assert checker.configuration.method == "construction"

    def test_random_circuit_self_equivalence_across_seeds(self):
        for seed in range(4):
            circuit = random_static_circuit(4, 5, seed=seed)
            assert check_equivalence(circuit, circuit.copy()).equivalent
