"""Tests for the equivalence library: rules, lookup surfaces, layer unification."""

import pytest

from repro.circuit import QuantumCircuit
from repro.circuit.equivalence_library import (
    EquivalenceLibrary,
    StandardEquivalenceLibrary,
)
from repro.circuit.gates import (
    CCXGate,
    CCZGate,
    ControlledGate,
    CPhaseGate,
    CRXGate,
    CRYGate,
    CRZGate,
    CSwapGate,
    CUGate,
    CXGate,
    HGate,
    RZGate,
    SwapGate,
    XGate,
    _InverseISwapGate,
    iSwapGate,
)
from repro.circuit.parameter import Parameter
from repro.compilation import decompose_to_cx_and_single_qubit
from repro.core.transformation import to_unitary_circuit
from repro.exceptions import CircuitError
from repro.simulators import circuit_unitary, matrices_equal_up_to_global_phase


def _steps_unitary(gate, steps):
    """The unitary of a rule's defining sub-circuit on the gate's qubit count."""
    circuit = QuantumCircuit(gate.num_qubits, name="steps")
    for sub_gate, qubits in steps:
        circuit.append(sub_gate, list(qubits))
    return circuit_unitary(circuit)


def _gate_unitary(gate):
    circuit = QuantumCircuit(gate.num_qubits, name="gate")
    circuit.append(gate, list(range(gate.num_qubits)))
    return circuit_unitary(circuit)


#: Every concrete gate the standard library carries a rule for.
LIBRARY_GATES = [
    SwapGate(),
    iSwapGate(),
    _InverseISwapGate(),
    CSwapGate(),
    CCXGate(),
    CCZGate(),
    CRZGate(0.7),
    CRYGate(-1.3),
    CRXGate(2.1),
    CPhaseGate(0.9),
    CUGate(0.7, 0.3, -0.4),
]


class TestStandardRulesAreCorrect:
    @pytest.mark.parametrize(
        "gate", LIBRARY_GATES, ids=[g.name for g in LIBRARY_GATES]
    )
    def test_rule_reproduces_the_gate_unitary(self, gate):
        steps = StandardEquivalenceLibrary.translation_steps(gate)
        assert steps is not None, f"no rule for {gate.name}"
        assert matrices_equal_up_to_global_phase(
            _steps_unitary(gate, steps), _gate_unitary(gate)
        )

    def test_parameterized_family_is_registered_once(self):
        # Two different angles instantiate the same rule to different steps.
        small = StandardEquivalenceLibrary.translation_steps(CRZGate(0.4))
        large = StandardEquivalenceLibrary.translation_steps(CRZGate(1.6))
        assert [g.name for g, _ in small] == [g.name for g, _ in large]
        assert small[0][0].params == (pytest.approx(0.2),)
        assert large[0][0].params == (pytest.approx(0.8),)


class TestLookupSurfaces:
    def test_gate_definition_resolves_through_the_library(self):
        for gate in (SwapGate(), iSwapGate(), _InverseISwapGate(), CSwapGate()):
            definition = gate.definition()
            assert definition == StandardEquivalenceLibrary.definition_steps(gate)
            assert definition is not None

    def test_translation_only_rules_are_not_definitions(self):
        # ccx has a translation rule but no backend-facing definition: DD
        # backends apply the Toffoli natively.
        assert CCXGate().definition() is None
        assert StandardEquivalenceLibrary.definition_steps(CCXGate()) is None
        assert StandardEquivalenceLibrary.translation_steps(CCXGate()) is not None

    def test_controlled_factoring_of_a_composite_base(self):
        controlled_swap = ControlledGate(SwapGate(), 1)
        steps = StandardEquivalenceLibrary.controlled_factoring(controlled_swap)
        assert steps is not None
        assert matrices_equal_up_to_global_phase(
            _steps_unitary(controlled_swap, steps), _gate_unitary(CSwapGate())
        )

    def test_controlled_single_qubit_base_is_left_to_the_backend(self):
        assert (
            StandardEquivalenceLibrary.controlled_factoring(ControlledGate(XGate(), 1))
            is None
        )

    def test_negative_control_normalization(self):
        negative = ControlledGate(SwapGate(), 1, ctrl_state=0)
        steps = StandardEquivalenceLibrary.translation_steps(negative)
        assert steps is not None
        assert matrices_equal_up_to_global_phase(
            _steps_unitary(negative, steps), _gate_unitary(negative)
        )

    def test_unknown_gate_returns_none(self):
        assert StandardEquivalenceLibrary.translation_steps(HGate()) is None
        assert StandardEquivalenceLibrary.has_entry(HGate()) is False


class TestRegistrationValidation:
    def test_template_params_must_be_parameters(self):
        library = EquivalenceLibrary()
        with pytest.raises(CircuitError):
            library.add_equivalence(RZGate(0.5), [(RZGate(0.5), (0,))])

    def test_steps_must_fit_the_template_arity(self):
        library = EquivalenceLibrary()
        with pytest.raises(CircuitError):
            library.add_equivalence(SwapGate(), [(CXGate(), (0, 2))])

    def test_custom_rule_binds_by_substitution(self):
        library = EquivalenceLibrary()
        theta = Parameter("theta")
        library.add_equivalence(
            RZGate(theta), [(RZGate(theta / 2), (0,)), (RZGate(theta / 2), (0,))]
        )
        steps = library.translation_steps(RZGate(1.0))
        assert [g.params for g, _ in steps] == [(0.5,), (0.5,)]


class TestLayerUnification:
    """The three former decomposition tables all resolve through the library."""

    def _mixed_circuit(self):
        circuit = QuantumCircuit(3, name="mixed")
        circuit.h(0)
        circuit.append(SwapGate(), [0, 1])
        circuit.append(CCXGate(), [0, 1, 2])
        circuit.append(CRZGate(0.6), [1, 2])
        circuit.append(iSwapGate(), [1, 2])
        return circuit

    def test_basis_translation_resolves_through_the_library(self):
        circuit = self._mixed_circuit()
        translated = decompose_to_cx_and_single_qubit(circuit)
        for instruction in translated:
            gate = instruction.operation
            assert gate.num_qubits == 1 or gate.name in ("cx", "gphase")
        assert matrices_equal_up_to_global_phase(
            circuit_unitary(translated), circuit_unitary(circuit), tolerance=1e-9
        )

    def test_measurement_deferral_factors_controlled_composites(self):
        # A circuit whose deferral produces a classically-controlled swap:
        # the transformation layer must factor C(SWAP) through the library.
        circuit = QuantumCircuit(3, 1, name="deferred")
        circuit.h(0)
        circuit.measure(0, 0)
        circuit.append(SwapGate(), [1, 2], condition=(circuit.cregs[0], 1))
        unitary_circuit = to_unitary_circuit(circuit)
        for instruction in unitary_circuit.circuit:
            assert instruction.condition is None
