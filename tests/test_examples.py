"""Integration tests: every example script must run successfully.

The examples double as end-to-end tests of the public API; each is executed in
a subprocess (so that import-time and ``__main__`` behaviour are exercised)
and its output is checked for the expected verdicts.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
SRC_DIR = Path(__file__).resolve().parent.parent / "src"


def run_example(name: str) -> str:
    script = EXAMPLES_DIR / name
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
        env={"PYTHONPATH": str(SRC_DIR), "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stdout}\n{result.stderr}"
    return result.stdout


@pytest.mark.parametrize(
    "name",
    [path.name for path in sorted(EXAMPLES_DIR.glob("*.py"))],
)
def test_example_runs(name):
    output = run_example(name)
    assert output.strip(), f"{name} produced no output"


class TestExampleContents:
    def test_quickstart_verdicts(self):
        output = run_example("quickstart.py")
        assert output.count("equivalent") >= 3
        assert "not_equivalent" in output

    def test_iqpe_example_mentions_both_schemes(self):
        output = run_example("iqpe_vs_qpe.py")
        assert "Full functional verification: equivalent" in output
        assert "probably_equivalent" in output
        assert "|001>" in output

    def test_compilation_example_detects_bug(self):
        output = run_example("verify_compilation.py")
        assert "Verification of the compilation result: equivalent" in output
        assert "not_equivalent" in output

    def test_distribution_extraction_reproduces_fig4(self):
        output = run_example("distribution_extraction.py")
        assert "P(0) = 0.50, P(1) = 0.50" in output
        assert "0.411" in output

    def test_teleportation_example(self):
        output = run_example("teleportation_verification.py")
        assert "Scheme 1 (unitary reconstruction): equivalent" in output
        assert "not_equivalent" in output
