"""Tests for Scheme 2: measurement-outcome distribution extraction."""

import math

import pytest

from repro.algorithms import (
    bernstein_vazirani_dynamic,
    iterative_qpe,
    qft_dynamic,
    running_example_lambda,
    teleportation_dynamic,
)
from repro.circuit import QuantumCircuit
from repro.core.distributions import total_variation_distance
from repro.core.extraction import extract_distribution
from repro.exceptions import ExtractionError
from repro.simulators.density_matrix import DensityMatrixSimulator


class TestConditionedReset:
    def _circuit(self, ctrl_value: int) -> QuantumCircuit:
        """|1> is measured into c0, then q0 is reset iff c0 == ctrl_value."""
        circuit = QuantumCircuit(1, 2)
        circuit.x(0)
        circuit.measure(0, 0)
        circuit.reset(0, condition=(0, ctrl_value))
        circuit.measure(0, 1)
        return circuit

    @pytest.mark.parametrize("backend", ["statevector", "dd"])
    def test_satisfied_condition_applies_reset(self, backend):
        distribution = extract_distribution(self._circuit(1), backend=backend).distribution
        # c0 = 1 always; condition fires, so the second measurement reads 0.
        assert distribution == pytest.approx({"01": 1.0})

    @pytest.mark.parametrize("backend", ["statevector", "dd"])
    def test_unsatisfied_condition_skips_reset(self, backend):
        distribution = extract_distribution(self._circuit(0), backend=backend).distribution
        # Condition never fires: an unconditional-reset miscompile would
        # read 0 here instead of the surviving 1.
        assert distribution == pytest.approx({"11": 1.0})

    def test_density_matrix_simulator_agrees(self):
        fired = DensityMatrixSimulator().run(self._circuit(1))
        skipped = DensityMatrixSimulator().run(self._circuit(0))
        assert fired == pytest.approx({"01": 1.0})
        assert skipped == pytest.approx({"11": 1.0})

    def test_stochastic_simulator_agrees(self):
        from repro.simulators.stochastic import StochasticSimulator

        counts = StochasticSimulator(seed=5).run(self._circuit(0), shots=16)
        assert counts == {"11": 16}


class TestBasics:
    def test_static_circuit_with_final_measurements(self):
        circuit = QuantumCircuit(2, 2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.measure_all()
        result = extract_distribution(circuit)
        assert result.distribution == pytest.approx({"00": 0.5, "11": 0.5})
        assert result.num_branch_points == 2

    def test_no_classical_bits_raises(self):
        with pytest.raises(ExtractionError):
            extract_distribution(QuantumCircuit(1))

    def test_unknown_backend_raises(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        with pytest.raises(ExtractionError):
            extract_distribution(circuit, backend="tensor-network")

    def test_total_probability_is_one(self):
        result = extract_distribution(iterative_qpe(3))
        assert result.total_probability() == pytest.approx(1.0)

    def test_initial_state_options(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        assert extract_distribution(circuit, "1").distribution == pytest.approx({"1": 1.0})
        assert extract_distribution(circuit, 1).distribution == pytest.approx({"1": 1.0})

    def test_probability_accessor(self):
        result = extract_distribution(bernstein_vazirani_dynamic("110"))
        assert result.probability("110") == pytest.approx(1.0)
        assert result.probability("000") == 0.0


class TestFigure4:
    """The running example of the paper: IQPE with U = p(3*pi/8), m = 3."""

    @pytest.fixture()
    def result(self):
        return extract_distribution(iterative_qpe(3, running_example_lambda))

    def test_most_probable_outcomes(self, result):
        # theta = 3/16 is not exactly representable with 3 bits; |001> and
        # |010> are the two most probable outcomes (Example 1 of the paper).
        ordered = sorted(result.distribution, key=result.distribution.get, reverse=True)
        assert set(ordered[:2]) == {"001", "010"}

    def test_probability_of_001_matches_paper(self, result):
        # The paper quotes 1/2 * 0.85 * 0.96 ~ 0.408 from rounded checkpoint
        # probabilities; the exact value is ~0.411.
        assert result.probability("001") == pytest.approx(0.411, abs=0.005)

    def test_first_checkpoint_probability_is_half(self):
        # After the first round the measurement is unbiased (Fig. 4: 1/2 - 1/2).
        circuit = iterative_qpe(1, running_example_lambda)
        result = extract_distribution(circuit)
        # One-bit IQPE applies the largest power of U; probability of |1> here
        # is not 1/2, so instead check the 3-bit circuit's first branch point by
        # extracting the marginal of c0.
        full = extract_distribution(iterative_qpe(3, running_example_lambda))
        probability_c0_one = sum(
            value for key, value in full.distribution.items() if key[-1] == "1"
        )
        assert probability_c0_one == pytest.approx(0.5, abs=1e-9)
        assert result.total_probability() == pytest.approx(1.0)

    def test_num_paths_bounded_by_two_to_the_m(self, result):
        assert result.num_paths <= 2**3
        assert result.num_branch_points == 3 + 2  # 3 measurements + 2 resets

    def test_success_probability_above_four_over_pi_squared(self, result):
        # QPE succeeds (within +-1 ulp of the best 3-bit estimate) with
        # probability > 4/pi^2 ~ 0.405 (Section 2.2 of the paper).
        best = max(result.distribution.values())
        assert best > 4 / math.pi**2


class TestAgainstGroundTruth:
    @pytest.mark.parametrize(
        "circuit_factory",
        [
            lambda: iterative_qpe(3, running_example_lambda),
            lambda: bernstein_vazirani_dynamic("101"),
            lambda: qft_dynamic(3),
            teleportation_dynamic,
        ],
        ids=["iqpe", "bv", "qft", "teleport"],
    )
    def test_matches_density_matrix_simulation(self, circuit_factory):
        circuit = circuit_factory()
        extracted = extract_distribution(circuit).distribution
        reference = DensityMatrixSimulator().run(circuit)
        assert total_variation_distance(extracted, reference) < 1e-9

    def test_dd_backend_matches_statevector_backend(self):
        for circuit in (iterative_qpe(3, running_example_lambda), qft_dynamic(3)):
            dense = extract_distribution(circuit, backend="statevector").distribution
            dd = extract_distribution(circuit, backend="dd").distribution
            assert total_variation_distance(dense, dd) < 1e-9


class TestPruningAndSharing:
    def test_deterministic_circuit_has_single_path(self):
        """BV produces a deterministic outcome, so pruning collapses the tree."""
        result = extract_distribution(bernstein_vazirani_dynamic("11011"))
        assert result.num_paths == 1
        assert result.num_pruned > 0

    def test_dense_circuit_explores_all_paths(self):
        """The dynamic QFT on |0...0> yields a uniform (dense) distribution."""
        result = extract_distribution(qft_dynamic(4))
        assert result.num_paths == 2**4
        assert all(value == pytest.approx(1 / 16) for value in result.distribution.values())

    def test_max_paths_limit(self):
        with pytest.raises(ExtractionError):
            extract_distribution(qft_dynamic(4), max_paths=7)

    def test_aggressive_pruning_threshold_raises(self):
        circuit = QuantumCircuit(1, 1)
        circuit.h(0)
        circuit.measure(0, 0)
        with pytest.raises(ExtractionError):
            extract_distribution(circuit, prune_threshold=0.9)

    def test_standalone_reset_branches_and_merges(self):
        """A reset without a preceding measurement still yields a valid result."""
        circuit = QuantumCircuit(2, 1)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.reset(0)
        circuit.measure(1, 0)
        result = extract_distribution(circuit)
        assert result.distribution == pytest.approx({"0": 0.5, "1": 0.5})

    def test_classically_controlled_operations_respected(self):
        circuit = QuantumCircuit(2, 2)
        circuit.h(0)
        circuit.measure(0, 0)
        circuit.x(1, condition=(0, 1))
        circuit.measure(1, 1)
        result = extract_distribution(circuit)
        assert result.distribution == pytest.approx({"00": 0.5, "11": 0.5})
