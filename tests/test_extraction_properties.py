"""Property-based tests of the extraction scheme and the transformation scheme.

The key invariants, checked on randomly generated dynamic circuits:

* the extracted distribution is a probability distribution (non-negative,
  sums to 1),
* it agrees with the ensemble density-matrix simulator (ground truth),
* it is identical for the statevector and the decision-diagram backends,
* it is preserved by the unitary reconstruction (Scheme 1), and
* the reconstruction never contains non-unitary primitives and uses exactly
  ``n + r`` qubits.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.random_circuits import random_dynamic_circuit
from repro.core.distributions import total_variation_distance
from repro.core.extraction import extract_distribution
from repro.core.transformation import to_unitary_circuit
from repro.simulators.density_matrix import DensityMatrixSimulator

MAX_EXAMPLES = 15

dynamic_circuits = st.builds(
    random_dynamic_circuit,
    num_qubits=st.integers(min_value=1, max_value=3),
    depth=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
    num_measurements=st.integers(min_value=1, max_value=3),
)


class TestExtractionInvariants:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(circuit=dynamic_circuits)
    def test_is_probability_distribution(self, circuit):
        result = extract_distribution(circuit)
        assert all(value >= 0.0 for value in result.distribution.values())
        np.testing.assert_allclose(result.total_probability(), 1.0, atol=1e-9)

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(circuit=dynamic_circuits)
    def test_matches_density_matrix_ground_truth(self, circuit):
        extracted = extract_distribution(circuit).distribution
        reference = DensityMatrixSimulator().run(circuit)
        assert total_variation_distance(extracted, reference) < 1e-8

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(circuit=dynamic_circuits)
    def test_backends_agree(self, circuit):
        dense = extract_distribution(circuit, backend="statevector").distribution
        dd = extract_distribution(circuit, backend="dd").distribution
        assert total_variation_distance(dense, dd) < 1e-8


class TestTransformationInvariants:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(circuit=dynamic_circuits)
    def test_reconstruction_is_unitary_and_sized_correctly(self, circuit):
        result = to_unitary_circuit(circuit)
        assert not result.circuit.is_dynamic
        assert result.circuit.num_resets == 0
        assert result.circuit.num_classically_controlled == 0
        # n + r qubits, where r counts only effective resets (paper, Section 4).
        assert result.circuit.num_qubits == circuit.num_qubits + result.num_added_qubits
        assert result.num_added_qubits <= circuit.num_resets

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(circuit=dynamic_circuits)
    def test_reconstruction_preserves_distribution(self, circuit):
        original = extract_distribution(circuit).distribution
        reconstructed = extract_distribution(to_unitary_circuit(circuit).circuit).distribution
        assert total_variation_distance(original, reconstructed) < 1e-8
