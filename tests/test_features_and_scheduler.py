"""Tests for circuit feature extraction, portfolio scheduling and the
pluggable checker registry."""

import pickle
import threading
import time

import pytest

from repro.algorithms import (
    bernstein_vazirani_dynamic,
    bernstein_vazirani_static,
    ghz_ladder,
    ghz_with_bug,
    qft_dynamic,
    qft_static_benchmark,
    teleportation_dynamic,
    teleportation_static,
)
from repro.circuit import QuantumCircuit
from repro.core import (
    Checker,
    CheckerOutcome,
    Configuration,
    EquivalenceCheckingManager,
    EquivalenceCriterion,
    ScheduledChecker,
    circuit_features,
    extract_pair_features,
    register_checker,
    resolve_checker,
    resolve_scheduler,
    unregister_checker,
)
from repro.exceptions import ConfigurationError, EquivalenceCheckingError

SEED = 1234


def _conditioned_reset_pair(equivalent: bool = True):
    """Two builds of a circuit with a classically-conditioned reset.

    Scheme 1 cannot reconstruct such circuits
    (:func:`~repro.core.transformation.substitute_resets` raises — the PR 2
    fix this guards), so only a Scheme-2 checker can decide the pair.
    """
    first = QuantumCircuit(1, 2)
    first.h(0)
    first.measure(0, 0)
    first.reset(0, condition=(0, 1))
    first.measure(0, 1)

    second = QuantumCircuit(1, 2)
    second.h(0)
    second.measure(0, 0)
    second.reset(0, condition=(0, 1))
    if not equivalent:
        second.x(0)
    second.measure(0, 1)
    return first, second


class TestCircuitFeatures:
    def test_static_circuit_features(self):
        circuit = ghz_ladder(4)
        features = circuit_features(circuit)
        assert features.num_qubits == 4
        assert features.num_gates == circuit.size
        assert features.num_resets == 0
        assert features.num_classically_controlled == 0
        assert not features.is_dynamic
        assert not features.needs_scheme_two
        assert features.depth == circuit.depth()
        assert 0.0 < features.two_qubit_ratio < 1.0
        assert set(features.gate_types) == {"h", "cx"}

    def test_reset_sets_dynamic_flag(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.reset(0)
        features = circuit_features(circuit)
        assert features.num_resets == 1
        assert features.is_dynamic
        assert not features.needs_scheme_two

    def test_mid_circuit_measurement_sets_dynamic_flag(self):
        circuit = QuantumCircuit(2, 1)
        circuit.h(0)
        circuit.measure(0, 0)
        circuit.h(0)  # further op on the measured qubit
        features = circuit_features(circuit)
        assert features.num_measurements == 1
        assert features.has_mid_circuit_measurement
        assert features.is_dynamic

    def test_final_measurement_stays_static(self):
        circuit = QuantumCircuit(2, 2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.measure(0, 0)
        circuit.measure(1, 1)
        features = circuit_features(circuit)
        assert features.num_measurements == 2
        assert not features.has_mid_circuit_measurement
        assert not features.is_dynamic

    def test_classically_conditioned_op_sets_dynamic_flag(self):
        circuit = QuantumCircuit(2, 1)
        circuit.h(0)
        circuit.measure(0, 0)
        circuit.x(1, condition=(0, 1))
        features = circuit_features(circuit)
        assert features.num_classically_controlled == 1
        assert features.is_dynamic
        assert not features.needs_scheme_two  # conditioned *gate*, scheme 1 ok

    def test_conditioned_reset_needs_scheme_two(self):
        first, _ = _conditioned_reset_pair()
        features = circuit_features(first)
        assert features.num_conditioned_resets == 1
        assert features.needs_scheme_two
        assert features.is_dynamic

    def test_dynamic_bv_matches_circuit_properties(self):
        circuit = bernstein_vazirani_dynamic("1011")
        features = circuit_features(circuit)
        assert features.is_dynamic == circuit.is_dynamic
        assert features.num_resets == circuit.num_resets
        assert features.num_measurements == circuit.num_measurements
        assert (
            features.num_classically_controlled == circuit.num_classically_controlled
        )
        assert features.depth == circuit.depth()

    def test_to_dict_is_json_friendly(self):
        import json

        payload = circuit_features(teleportation_dynamic()).to_dict()
        assert json.dumps(payload)  # serializable
        assert payload["is_dynamic"] is True


class TestPairFeatures:
    def test_identical_builds_have_similarity_one(self):
        pair = extract_pair_features(ghz_ladder(4), ghz_ladder(4))
        assert pair.structural_similarity == 1.0
        assert pair.gate_count_ratio == 1.0
        assert pair.qubit_counts_match

    def test_bugged_pair_similarity_below_one(self):
        pair = extract_pair_features(ghz_ladder(4), ghz_with_bug(4))
        assert pair.structural_similarity < 1.0

    def test_structurally_unrelated_pair_is_dissimilar(self):
        pair = extract_pair_features(
            qft_static_benchmark(4), bernstein_vazirani_static("1011")
        )
        assert pair.structural_similarity < 0.5

    def test_pair_features_pickle_roundtrip(self):
        pair = extract_pair_features(
            teleportation_static(), teleportation_dynamic()
        )
        clone = pickle.loads(pickle.dumps(pair))
        assert clone == pair


class TestSchedulers:
    def test_static_replays_configured_order(self):
        config = Configuration(portfolio=("alternating", "simulation"))
        schedule = resolve_scheduler("static")().build(
            ghz_ladder(3), ghz_ladder(3), config
        )
        assert schedule.checker_names == ("alternating", "simulation")
        assert schedule.scheduler == "static"
        assert schedule.features is None

    def test_adaptive_puts_provers_first_on_clones(self):
        config = Configuration(scheduler="adaptive")
        schedule = resolve_scheduler("adaptive")().build(
            ghz_ladder(4), ghz_ladder(4), config
        )
        assert schedule.checker_names == ("alternating", "simulation")
        assert schedule.features is not None

    def test_adaptive_front_loads_falsifier_on_dissimilar_pairs(self):
        config = Configuration(
            scheduler="adaptive", portfolio=("alternating", "simulation"), timeout=60.0
        )
        schedule = resolve_scheduler("adaptive")().build(
            qft_static_benchmark(4), bernstein_vazirani_static("1011"), config
        )
        assert schedule.checker_names[0] == "simulation"
        falsifier = schedule.checkers[0]
        assert falsifier.budget_fraction is not None
        assert falsifier.budget(config) == pytest.approx(
            falsifier.budget_fraction * 60.0
        )

    def test_adaptive_never_selects_scheme_one_only_path_for_conditioned_reset(self):
        # Regression guard for the PR 2 substitute_resets fix: a conditioned
        # reset cannot be rewired onto a fresh qubit, so every Scheme-1
        # checker is doomed; the adaptive lineup must contain a Scheme-2
        # checker and lead with it.
        first, second = _conditioned_reset_pair()
        config = Configuration(scheduler="adaptive")
        schedule = resolve_scheduler("adaptive")().build(first, second, config)
        roles = [resolve_checker(name).scheme_two for name in schedule.checker_names]
        assert any(roles), "schedule is a scheme-1-only path"
        assert roles[0], "scheme-2 checker must run first for conditioned resets"

    def test_scheduled_checker_budget_defaults_to_checker_timeout(self):
        config = Configuration(checker_timeout=5.0)
        assert ScheduledChecker("simulation").budget(config) == 5.0
        assert ScheduledChecker("simulation").budget(Configuration()) is None

    def test_schedule_pickle_roundtrip(self):
        config = Configuration(scheduler="adaptive")
        schedule = resolve_scheduler("adaptive")().build(
            teleportation_static(), teleportation_dynamic(), config
        )
        clone = pickle.loads(pickle.dumps(schedule))
        assert clone.checker_names == schedule.checker_names
        assert clone.features == schedule.features


class TestAdaptiveManager:
    def test_adaptive_rescues_equivalent_conditioned_reset_pair(self):
        first, second = _conditioned_reset_pair(equivalent=True)
        static = EquivalenceCheckingManager(seed=SEED).run(first, second)
        assert static.criterion is EquivalenceCriterion.NO_INFORMATION
        adaptive = EquivalenceCheckingManager(seed=SEED, scheduler="adaptive").run(
            first, second
        )
        assert adaptive.criterion is EquivalenceCriterion.PROBABLY_EQUIVALENT
        assert adaptive.schedule[0] == "distribution"
        assert adaptive.features["needs_scheme_two"] is True

    def test_adaptive_refutes_non_equivalent_conditioned_reset_pair(self):
        first, second = _conditioned_reset_pair(equivalent=False)
        adaptive = EquivalenceCheckingManager(seed=SEED, scheduler="adaptive").run(
            first, second
        )
        assert adaptive.criterion is EquivalenceCriterion.NOT_EQUIVALENT
        assert adaptive.decided_by == "distribution"

    def test_adaptive_skips_falsifier_on_clone_pairs(self):
        result = EquivalenceCheckingManager(seed=SEED, scheduler="adaptive").run(
            ghz_ladder(4), ghz_ladder(4)
        )
        assert result.criterion is EquivalenceCriterion.EQUIVALENT
        assert result.decided_by == "alternating"
        statuses = {a.method: a.status for a in result.attempts}
        assert statuses["simulation"] == "skipped"

    def test_result_records_schedule_and_features(self):
        result = EquivalenceCheckingManager(seed=SEED, scheduler="adaptive").run(
            bernstein_vazirani_static("101"), bernstein_vazirani_dynamic("101")
        )
        assert result.scheduler == "adaptive"
        assert set(result.schedule) == {"simulation", "alternating"}
        assert result.features is not None
        assert result.features["second"]["is_dynamic"] is True


def _agreement_pairs():
    """A mixed batch: clones, static/dynamic realizations, and bugged pairs."""
    pairs = [
        (ghz_ladder(3), ghz_ladder(3)),
        (ghz_ladder(4), ghz_ladder(4)),
        (bernstein_vazirani_static("101"), bernstein_vazirani_dynamic("101")),
        (bernstein_vazirani_static("0110"), bernstein_vazirani_dynamic("0110")),
        (teleportation_static(), teleportation_dynamic()),
        (qft_static_benchmark(4), qft_dynamic(4)),
        (ghz_ladder(3), ghz_with_bug(3)),
        (bernstein_vazirani_static("101"), bernstein_vazirani_dynamic("111")),
    ]
    return pairs


class TestSchedulerAgreement:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_adaptive_never_changes_a_verdict(self, executor):
        # Acceptance criterion: entry-for-entry identical criteria between
        # scheduler="static" and scheduler="adaptive", on both executors.
        pairs = _agreement_pairs()
        static = EquivalenceCheckingManager(
            seed=SEED, scheduler="static", executor=executor, max_workers=2
        ).verify_batch(pairs)
        adaptive = EquivalenceCheckingManager(
            seed=SEED, scheduler="adaptive", executor=executor, max_workers=2
        ).verify_batch(pairs)
        assert static.num_pairs == adaptive.num_pairs == len(pairs)
        for static_entry, adaptive_entry in zip(static.entries, adaptive.entries):
            assert static_entry.error is None and adaptive_entry.error is None
            assert (
                adaptive_entry.result.criterion is static_entry.result.criterion
            ), adaptive_entry.index

    def test_process_workers_replay_parent_schedules(self):
        pairs = _agreement_pairs()
        thread = EquivalenceCheckingManager(
            seed=SEED, scheduler="adaptive", executor="thread", max_workers=2
        ).verify_batch(pairs)
        process = EquivalenceCheckingManager(
            seed=SEED, scheduler="adaptive", executor="process", max_workers=2
        ).verify_batch(pairs)
        for thread_entry, process_entry in zip(thread.entries, process.entries):
            assert process_entry.result.schedule == thread_entry.result.schedule
            assert process_entry.result.scheduler == "adaptive"


class _NeverDecides(Checker):
    """Third-party-style checker used to exercise the registry."""

    name = "never-decides"
    role = "falsifier"

    def check(self, first, second, configuration, *, interrupt=None):
        return CheckerOutcome(EquivalenceCriterion.NO_INFORMATION, {"custom": True})


class TestCheckerRegistry:
    def test_third_party_checker_plugs_in_by_name(self):
        register_checker(_NeverDecides)
        try:
            config = Configuration(portfolio=("never-decides", "alternating"))
            result = EquivalenceCheckingManager(config).run(
                ghz_ladder(3), ghz_ladder(3)
            )
            assert result.criterion is EquivalenceCriterion.EQUIVALENT
            custom = result.attempts[0]
            assert custom.method == "never-decides"
            assert custom.result.details == {"custom": True}
        finally:
            unregister_checker("never-decides")

    def test_duplicate_registration_rejected(self):
        register_checker(_NeverDecides)
        try:
            with pytest.raises(EquivalenceCheckingError):
                register_checker(_NeverDecides)
            register_checker(_NeverDecides, replace=True)  # explicit override ok
        finally:
            unregister_checker("never-decides")

    def test_unknown_names_rejected_eagerly_at_construction(self):
        # Satellite: unknown checker name -> ConfigurationError at
        # Configuration() time, not mid-run, with the registry as the source
        # of truth.
        with pytest.raises(ConfigurationError):
            Configuration(portfolio=("alternating", "never-decides"))
        with pytest.raises(ConfigurationError):
            Configuration(method="never-decides")
        with pytest.raises(ConfigurationError):
            Configuration(scheduler="magic")
        register_checker(_NeverDecides)
        try:
            Configuration(portfolio=("alternating", "never-decides"))  # now valid
        finally:
            unregister_checker("never-decides")

    def test_distribution_is_a_first_class_method(self):
        from repro.core import check_equivalence

        result = check_equivalence(
            bernstein_vazirani_static("101"),
            bernstein_vazirani_dynamic("101"),
            method="distribution",
        )
        assert result.criterion is EquivalenceCriterion.PROBABLY_EQUIVALENT
        assert result.method == "distribution"


class TestTimeoutStopFlag:
    @pytest.mark.parametrize("checker", ["alternating", "construction"])
    def test_timed_out_checker_thread_observes_stop_flag(self, checker):
        # Satellite: timed-out checker threads used to run to completion in
        # the background; with the stop flag they must exit shortly after the
        # portfolio abandons them.  Both the per-gate loops of the alternating
        # scheme and the monolithic DD build of the construction scheme poll
        # the flag.
        manager = EquivalenceCheckingManager(
            portfolio=(checker,), checker_timeout=0.005, seed=SEED
        )
        result = manager.run(qft_static_benchmark(12), qft_dynamic(12))
        assert result.attempts[0].status == "timeout"
        deadline = time.time() + 5.0
        while time.time() < deadline:
            leaked = [
                t for t in threading.enumerate() if t.name.startswith("checker-")
            ]
            if not leaked:
                break
            time.sleep(0.05)
        assert not leaked, f"abandoned checker threads still alive: {leaked}"
