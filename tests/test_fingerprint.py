"""Canonical fingerprint stability and sensitivity (repro.service.fingerprint)."""

import math
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import (
    ClassicalRegister,
    QuantumCircuit,
    QuantumRegister,
)
from repro.core import Configuration
from repro.service.fingerprint import (
    canonical_circuit_form,
    circuit_fingerprint,
    configuration_fingerprint,
    pair_fingerprint,
)

SEED = 7


@st.composite
def qasm_native_circuits(draw):
    """Random circuits over gates with a native OpenQASM 2 representation.

    The QASM round-trip property only holds for gates the exporter does not
    decompose, so the vocabulary is restricted accordingly.
    """
    num_qubits = draw(st.integers(min_value=1, max_value=4))
    circuit = QuantumCircuit(num_qubits, num_qubits, name="hypothesis")
    num_ops = draw(st.integers(min_value=1, max_value=12))
    for _ in range(num_ops):
        kind = draw(st.sampled_from(["h", "x", "rz", "cx", "p", "barrier"]))
        qubit = draw(st.integers(min_value=0, max_value=num_qubits - 1))
        if kind == "h":
            circuit.h(qubit)
        elif kind == "x":
            circuit.x(qubit)
        elif kind == "rz":
            circuit.rz(draw(st.floats(0.0, math.pi, allow_nan=False)), qubit)
        elif kind == "p":
            circuit.p(draw(st.floats(0.0, math.pi, allow_nan=False)), qubit)
        elif kind == "barrier":
            circuit.barrier()
        elif kind == "cx" and num_qubits > 1:
            target = draw(
                st.integers(min_value=0, max_value=num_qubits - 1).filter(
                    lambda t: t != qubit
                )
            )
            circuit.cx(qubit, target)
    if draw(st.booleans()):
        circuit.measure_all()
    return circuit


def _bell(name="bell", reg_names=("q", "c")) -> QuantumCircuit:
    circuit = QuantumCircuit(
        QuantumRegister(2, reg_names[0]), ClassicalRegister(2, reg_names[1]), name=name
    )
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.measure(0, 0)
    circuit.measure(1, 1)
    return circuit


class TestCircuitFingerprintStability:
    def test_register_names_and_circuit_name_are_ignored(self):
        assert circuit_fingerprint(_bell()) == circuit_fingerprint(
            _bell(name="other", reg_names=("alpha", "beta"))
        )

    def test_split_registers_same_flat_indices_match(self):
        # One 2-qubit register vs two 1-qubit registers: the flat instruction
        # stream is identical, so the fingerprints must match.
        split = QuantumCircuit(
            QuantumRegister(1, "a"), QuantumRegister(1, "b"), name="split"
        )
        split.h(0)
        split.cx(0, 1)
        joined = QuantumCircuit(2, name="joined")
        joined.h(0)
        joined.cx(0, 1)
        assert circuit_fingerprint(split) == circuit_fingerprint(joined)

    def test_barriers_are_ignored(self):
        plain = QuantumCircuit(2)
        plain.h(0)
        plain.cx(0, 1)
        fenced = QuantumCircuit(2)
        fenced.h(0)
        fenced.barrier()
        fenced.cx(0, 1)
        assert circuit_fingerprint(plain) == circuit_fingerprint(fenced)

    def test_pi_multiple_params_survive_qasm_roundtrip(self):
        # The exporter renders pi/2 symbolically; the reconstructed float is
        # exactly math.pi / 2, and both must fingerprint identically.
        circuit = QuantumCircuit(1)
        circuit.rz(math.pi / 2, 0)
        rebuilt = QuantumCircuit.from_qasm(circuit.to_qasm())
        assert circuit_fingerprint(circuit) == circuit_fingerprint(rebuilt)

    def test_conditioned_operations_fingerprint_their_condition(self):
        base = QuantumCircuit(2, 2)
        base.h(0)
        base.measure(0, 0)
        conditioned = base.copy()
        conditioned.x(1, condition=(0, 1))
        other_value = base.copy()
        other_value.x(1, condition=(0, 0))
        unconditioned = base.copy()
        unconditioned.x(1)
        prints = {
            circuit_fingerprint(conditioned),
            circuit_fingerprint(other_value),
            circuit_fingerprint(unconditioned),
        }
        assert len(prints) == 3

    @settings(max_examples=40, deadline=None)
    @given(circuit=qasm_native_circuits())
    def test_pickle_roundtrip_stable(self, circuit):
        restored = pickle.loads(pickle.dumps(circuit))
        assert circuit_fingerprint(restored) == circuit_fingerprint(circuit)

    @settings(max_examples=40, deadline=None)
    @given(circuit=qasm_native_circuits())
    def test_qasm_roundtrip_stable(self, circuit):
        rebuilt = QuantumCircuit.from_qasm(circuit.to_qasm())
        assert circuit_fingerprint(rebuilt) == circuit_fingerprint(circuit)

    @settings(max_examples=40, deadline=None)
    @given(circuit=qasm_native_circuits())
    def test_canonical_form_is_deterministic(self, circuit):
        assert canonical_circuit_form(circuit) == canonical_circuit_form(circuit)
        assert circuit_fingerprint(circuit) == circuit_fingerprint(circuit)


class TestCircuitFingerprintSensitivity:
    def test_different_gate_differs(self):
        a = QuantumCircuit(1)
        a.x(0)
        b = QuantumCircuit(1)
        b.y(0)
        assert circuit_fingerprint(a) != circuit_fingerprint(b)

    def test_different_params_differ(self):
        a = QuantumCircuit(1)
        a.rz(0.25, 0)
        b = QuantumCircuit(1)
        b.rz(0.75, 0)
        assert circuit_fingerprint(a) != circuit_fingerprint(b)

    def test_gate_order_differs(self):
        a = QuantumCircuit(1)
        a.h(0)
        a.x(0)
        b = QuantumCircuit(1)
        b.x(0)
        b.h(0)
        assert circuit_fingerprint(a) != circuit_fingerprint(b)

    def test_operand_order_differs(self):
        a = QuantumCircuit(2)
        a.cx(0, 1)
        b = QuantumCircuit(2)
        b.cx(1, 0)
        assert circuit_fingerprint(a) != circuit_fingerprint(b)

    def test_control_state_differs(self):
        from repro.circuit.gates import XGate

        a = QuantumCircuit(2)
        a.append(XGate().control(1, ctrl_state=1), [0, 1])
        b = QuantumCircuit(2)
        b.append(XGate().control(1, ctrl_state=0), [0, 1])
        assert circuit_fingerprint(a) != circuit_fingerprint(b)

    def test_idle_qubit_differs(self):
        # Same instruction stream over different system sizes is a different
        # check (the identity on the extra qubit is part of the semantics).
        a = QuantumCircuit(1)
        a.h(0)
        b = QuantumCircuit(2)
        b.h(0)
        assert circuit_fingerprint(a) != circuit_fingerprint(b)

    @settings(max_examples=30, deadline=None)
    @given(circuit=qasm_native_circuits(), data=st.data())
    def test_appending_a_gate_changes_the_fingerprint(self, circuit, data):
        before = circuit_fingerprint(circuit)
        extended = circuit.copy()
        extended.sdg(data.draw(st.integers(0, circuit.num_qubits - 1)))
        assert circuit_fingerprint(extended) != before


class TestPairAndConfigurationFingerprints:
    def test_pair_order_matters(self):
        a = _bell()
        b = QuantumCircuit(2, 2)
        b.h(0)
        assert pair_fingerprint(a, b) != pair_fingerprint(b, a)

    def test_verdict_relevant_fields_partition_the_cache(self):
        a, b = _bell(), _bell()
        base = Configuration(seed=1)
        for overrides in (
            {"seed": 2},
            {"tolerance": 1e-5},
            {"num_simulations": 8},
            {"scheduler": "adaptive"},
            {"portfolio": ("alternating",)},
            {"timeout": 30.0},
        ):
            changed = base.updated(**overrides)
            assert pair_fingerprint(a, b, base) != pair_fingerprint(a, b, changed), (
                f"{overrides} must change the pair fingerprint"
            )

    def test_performance_knobs_share_entries(self):
        a, b = _bell(), _bell()
        base = Configuration(seed=1)
        for overrides in (
            {"executor": "process"},
            {"max_workers": 16},
            {"batch_chunk_size": 4},
            {"gate_cache": False},
            {"gate_cache_size": 32},
            {"gate_cache_ttl": 60.0},
            {"dense_cutoff": 4},
            {"verdict_cache": True},
            {"cache_size": 2},
        ):
            changed = base.updated(**overrides)
            assert pair_fingerprint(a, b, base) == pair_fingerprint(a, b, changed), (
                f"{overrides} must not change the pair fingerprint"
            )

    def test_default_portfolio_matches_explicit_spelling(self):
        from repro.core.manager import DEFAULT_PORTFOLIO

        a, b = _bell(), _bell()
        implicit = Configuration(seed=1)
        explicit = Configuration(seed=1, portfolio=DEFAULT_PORTFOLIO)
        assert pair_fingerprint(a, b, implicit) == pair_fingerprint(a, b, explicit)

    def test_configuration_fingerprint_none_is_distinct(self):
        assert configuration_fingerprint(None) != configuration_fingerprint(
            Configuration()
        )

    def test_fingerprint_is_hex_sha256(self):
        fingerprint = circuit_fingerprint(_bell())
        assert len(fingerprint) == 64
        assert set(fingerprint) <= set("0123456789abcdef")


class TestCanonicalPairFingerprint:
    """Translation-level invariance of the canonical (second-tier) cache key."""

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_invariant_under_translation_levels(self, seed):
        from repro.circuit.random_circuits import random_static_circuit
        from repro.compilation import (
            decompose_to_cx_and_single_qubit,
            rewrite_single_qubit_to_u,
        )
        from repro.service.fingerprint import canonical_pair_fingerprint

        configuration = Configuration(seed=SEED)
        original = random_static_circuit(3, 3, seed=seed)
        level_one = decompose_to_cx_and_single_qubit(original)
        level_two = rewrite_single_qubit_to_u(level_one)
        base = canonical_pair_fingerprint(original, original, configuration)
        assert base is not None
        for level in (level_one, level_two):
            assert (
                canonical_pair_fingerprint(level, level, configuration) == base
            ), f"canonical fingerprint drifted at seed {seed}"

    def test_raw_and_canonical_keys_are_distinct(self):
        from repro.service.fingerprint import canonical_pair_fingerprint

        configuration = Configuration(seed=SEED)
        first = _bell()
        assert canonical_pair_fingerprint(
            first, first, configuration
        ) != pair_fingerprint(first, first, configuration)

    def test_tight_tolerance_disables_the_canonical_key(self):
        from repro.service.fingerprint import (
            canonical_fingerprints_sound_for,
            canonical_pair_fingerprint,
        )

        tight = Configuration(tolerance=1e-10)
        assert canonical_fingerprints_sound_for(tight) is False
        assert canonical_pair_fingerprint(_bell(), _bell(), tight) is None
