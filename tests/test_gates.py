"""Tests for the standard gate library."""

import math

import numpy as np
import pytest

from repro.circuit.gates import (
    CCXGate,
    CCZGate,
    CHGate,
    ControlledGate,
    CPhaseGate,
    CRXGate,
    CRYGate,
    CRZGate,
    CSwapGate,
    CUGate,
    CXGate,
    CYGate,
    CZGate,
    GlobalPhaseGate,
    HGate,
    IGate,
    MCPhaseGate,
    MCXGate,
    Measure,
    PhaseGate,
    Reset,
    RXGate,
    RYGate,
    RZGate,
    SdgGate,
    SGate,
    STANDARD_GATES,
    SwapGate,
    SXdgGate,
    SXGate,
    TdgGate,
    TGate,
    U2Gate,
    UGate,
    XGate,
    YGate,
    ZGate,
    get_gate,
    iSwapGate,
)
from repro.exceptions import CircuitError

ALL_FIXED_GATES = [
    IGate(),
    XGate(),
    YGate(),
    ZGate(),
    HGate(),
    SGate(),
    SdgGate(),
    TGate(),
    TdgGate(),
    SXGate(),
    SXdgGate(),
    CXGate(),
    CYGate(),
    CZGate(),
    CHGate(),
    SwapGate(),
    iSwapGate(),
    CCXGate(),
    CCZGate(),
    CSwapGate(),
]

PARAMETRIC_GATES = [
    RXGate(0.4),
    RYGate(-1.3),
    RZGate(2.1),
    PhaseGate(0.9),
    UGate(0.3, 1.1, -0.7),
    U2Gate(0.2, 0.5),
    CPhaseGate(0.8),
    CRXGate(-0.6),
    CRYGate(1.9),
    CRZGate(0.1),
    CUGate(0.4, 0.5, 0.6),
    GlobalPhaseGate(0.77),
    MCXGate(3),
    MCPhaseGate(0.3, 2),
]


class TestUnitarity:
    @pytest.mark.parametrize("gate", ALL_FIXED_GATES + PARAMETRIC_GATES, ids=lambda g: g.name)
    def test_matrix_is_unitary(self, gate):
        matrix = gate.matrix
        dim = matrix.shape[0]
        assert matrix.shape == (dim, dim)
        assert np.allclose(matrix @ matrix.conj().T, np.eye(dim), atol=1e-12)

    @pytest.mark.parametrize("gate", ALL_FIXED_GATES + PARAMETRIC_GATES, ids=lambda g: g.name)
    def test_matrix_dimension_matches_qubits(self, gate):
        assert gate.matrix.shape[0] == 2**gate.num_qubits

    @pytest.mark.parametrize("gate", ALL_FIXED_GATES + PARAMETRIC_GATES, ids=lambda g: g.name)
    def test_inverse_is_adjoint(self, gate):
        assert np.allclose(gate.inverse().matrix, gate.matrix.conj().T, atol=1e-12)


class TestSpecificMatrices:
    def test_x_matrix(self):
        assert np.allclose(XGate().matrix, [[0, 1], [1, 0]])

    def test_h_matrix(self):
        s = 1 / math.sqrt(2)
        assert np.allclose(HGate().matrix, [[s, s], [s, -s]])

    def test_s_squared_is_z(self):
        assert np.allclose(SGate().matrix @ SGate().matrix, ZGate().matrix)

    def test_t_squared_is_s(self):
        assert np.allclose(TGate().matrix @ TGate().matrix, SGate().matrix)

    def test_sx_squared_is_x(self):
        assert np.allclose(SXGate().matrix @ SXGate().matrix, XGate().matrix)

    def test_phase_gate_diagonal(self):
        theta = 0.37
        assert np.allclose(PhaseGate(theta).matrix, np.diag([1, np.exp(1j * theta)]))

    def test_rz_traceless_convention(self):
        theta = 0.9
        expected = np.diag([np.exp(-1j * theta / 2), np.exp(1j * theta / 2)])
        assert np.allclose(RZGate(theta).matrix, expected)

    def test_u_gate_reduces_to_known_gates(self):
        assert np.allclose(UGate(math.pi, 0, math.pi).matrix, XGate().matrix, atol=1e-12)
        assert np.allclose(
            UGate(math.pi / 2, 0, math.pi).matrix, HGate().matrix, atol=1e-12
        )

    def test_cx_matrix_little_endian(self):
        # Control is the first (least significant) qubit.
        expected = np.array(
            [[1, 0, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0], [0, 1, 0, 0]], dtype=complex
        )
        assert np.allclose(CXGate().matrix, expected)

    def test_swap_matrix(self):
        expected = np.array(
            [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
        )
        assert np.allclose(SwapGate().matrix, expected)

    def test_cswap_swaps_when_control_set(self):
        matrix = CSwapGate().matrix
        # |control=1, a=1, b=0> = index 0b011 = 3 maps to |control=1, a=0, b=1> = 0b101 = 5
        assert matrix[5, 3] == 1
        assert matrix[3, 3] == 0

    def test_global_phase(self):
        gate = GlobalPhaseGate(math.pi / 3)
        assert np.allclose(gate.matrix, [[np.exp(1j * math.pi / 3)]])


class TestControlledGates:
    def test_controlled_gate_matrix_matches_manual_construction(self):
        theta = 0.83
        gate = CPhaseGate(theta)
        expected = np.eye(4, dtype=complex)
        expected[3, 3] = np.exp(1j * theta)
        assert np.allclose(gate.matrix, expected)

    def test_negative_control(self):
        gate = CXGate(ctrl_state=0)
        # Applies X to the target when the control is |0>.
        expected = np.array(
            [[0, 0, 1, 0], [0, 1, 0, 0], [1, 0, 0, 0], [0, 0, 0, 1]], dtype=complex
        )
        assert np.allclose(gate.matrix, expected)

    def test_ccx_only_flips_when_both_controls_set(self):
        matrix = CCXGate().matrix
        # |c1 c0 t> with controls at bits 0, 1 and target at bit 2.
        assert matrix[0b111, 0b011] == 1
        assert matrix[0b011, 0b111] == 1
        assert matrix[0b001, 0b001] == 1

    def test_control_method_wraps_gate(self):
        controlled = HGate().control()
        assert isinstance(controlled, ControlledGate)
        assert controlled.num_qubits == 2
        assert np.allclose(controlled.matrix, CHGate().matrix)

    def test_control_of_controlled_gate_stacks(self):
        ccx = XGate().control().control()
        assert ccx.num_ctrl_qubits == 2
        assert np.allclose(ccx.matrix, CCXGate().matrix)

    def test_mcx_matches_repeated_control(self):
        assert np.allclose(MCXGate(2).matrix, CCXGate().matrix)

    def test_invalid_ctrl_state_raises(self):
        with pytest.raises(CircuitError):
            ControlledGate(XGate(), 1, ctrl_state=2)

    def test_zero_controls_raises(self):
        with pytest.raises(CircuitError):
            ControlledGate(XGate(), 0)

    def test_controlled_gate_inverse_preserves_ctrl_state(self):
        gate = CPhaseGate(0.5, ctrl_state=0)
        inverse = gate.inverse()
        assert inverse.ctrl_state == 0
        assert np.allclose(inverse.matrix, gate.matrix.conj().T)


class TestDefinitions:
    @pytest.mark.parametrize("gate", [SwapGate(), iSwapGate(), CSwapGate()], ids=lambda g: g.name)
    def test_definition_reproduces_matrix(self, gate):
        from repro.simulators.unitary import embed_gate_matrix

        total = np.eye(2**gate.num_qubits, dtype=complex)
        for sub_gate, qubits in gate.definition():
            total = embed_gate_matrix(sub_gate.matrix, qubits, gate.num_qubits) @ total
        assert np.allclose(total, gate.matrix, atol=1e-12)

    def test_single_qubit_gates_have_no_definition(self):
        assert HGate().definition() is None

    def test_power(self):
        assert len(TGate().power(3)) == 3
        inverse_power = PhaseGate(0.3).power(-2)
        assert len(inverse_power) == 2
        assert np.allclose(inverse_power[0].matrix, PhaseGate(-0.3).matrix)


class TestGateLookup:
    @pytest.mark.parametrize("name", sorted(STANDARD_GATES))
    def test_every_standard_gate_constructible(self, name):
        _, num_params = STANDARD_GATES[name]
        gate = get_gate(name, [0.1 * (k + 1) for k in range(num_params)])
        assert gate.num_qubits >= 1

    def test_unknown_gate_raises(self):
        with pytest.raises(CircuitError):
            get_gate("nope")

    def test_wrong_parameter_count_raises(self):
        with pytest.raises(CircuitError):
            get_gate("rx")

    def test_equality_by_name_and_params(self):
        assert RXGate(0.5) == RXGate(0.5)
        assert RXGate(0.5) != RXGate(0.6)
        assert XGate() != YGate()

    def test_non_unitary_operations(self):
        assert not Measure().is_unitary
        assert not Reset().is_unitary
        assert Measure().num_clbits == 1
