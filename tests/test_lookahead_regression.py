"""Regression tests for the ``lookahead`` branch of the alternating DD check.

The lookahead strategy speculatively builds *both* candidates (next left gate
and next inverted right gate) each iteration and commits only the one with
the smaller decision diagram.  Its index bookkeeping is delicate: after
evaluating a candidate, the losing side's index must be restored and the
winning side's index advanced — get either wrong and gates are skipped or
applied twice, silently corrupting the verdict.  These tests pin that
bookkeeping via a spy on ``instruction_to_dd`` plus verdict checks, and the
``max_nodes`` running-maximum reporting.
"""

import pytest

import repro.core.checkers.alternating as alternating_module
from repro.circuit import QuantumCircuit
from repro.core import Configuration, check_equivalence
from repro.core.checkers.base import inverse_instruction as _inverse_instruction


def _equivalent_pair() -> tuple[QuantumCircuit, QuantumCircuit]:
    """An equivalent pair with different, pairwise-distinct gate lists.

    The second circuit repeats the first and appends self-cancelling rotation
    pairs with distinct angles, so every instruction (and every inverted
    instruction) is unique — which lets the spy map each build back to an
    unambiguous gate index.
    """
    left = QuantumCircuit(3, name="left")
    left.h(0)
    left.cx(0, 1)
    left.t(1)
    left.cx(1, 2)
    left.h(2)

    right = left.copy(name="right")
    right.rx(0.3, 0)
    right.rx(-0.3, 0)
    right.rz(0.7, 1)
    right.rz(-0.7, 1)
    right.ry(0.2, 2)
    right.ry(-0.2, 2)
    return left, right


@pytest.fixture()
def build_spy(monkeypatch):
    """Record every instruction whose gate DD the alternating check builds."""
    calls = []
    original = alternating_module.instruction_to_dd

    def wrapper(package, instruction):
        calls.append(instruction)
        return original(package, instruction)

    monkeypatch.setattr(alternating_module, "instruction_to_dd", wrapper)
    return calls


def _index_sequences(calls, left_list, inverse_right_list):
    """Split the spied builds into per-side gate-index sequences."""
    left_ids = {id(instruction): index for index, instruction in enumerate(left_list)}
    left_seq, right_seq = [], []
    for call in calls:
        if id(call) in left_ids:
            left_seq.append(left_ids[id(call)])
        else:
            right_seq.append(inverse_right_list.index(call))
    return left_seq, right_seq


def _assert_valid_progression(sequence, length):
    """A correct lookahead builds indices 0..length-1 in order.

    A discarded candidate is rebuilt at the *same* index next iteration, so
    repeats are fine — but any jump (skipped gate) or decrease (index restored
    to the wrong value) is a bookkeeping bug.
    """
    assert sequence[0] == 0
    assert sequence[-1] == length - 1
    assert set(sequence) == set(range(length))
    for previous, current in zip(sequence, sequence[1:]):
        assert current in (previous, previous + 1)


class TestLookaheadIndexBookkeeping:
    def test_equivalent_pair_verdict_and_gate_consumption(self, build_spy):
        left, right = _equivalent_pair()
        result = check_equivalence(left, right, strategy="lookahead")
        assert result.criterion.value == "equivalent"
        assert result.details["num_gates_first"] == 5
        assert result.details["num_gates_second"] == 11

        left_list = list(left.remove_final_measurements().gate_instructions())
        right_list = list(right.remove_final_measurements().gate_instructions())
        inverse_right = [_inverse_instruction(instruction) for instruction in right_list]

        # Each iteration builds at most two candidates and commits one, so the
        # total number of builds is bounded by twice the committed gates.
        total = len(left_list) + len(right_list)
        assert total <= len(build_spy) <= 2 * total

        left_seq, right_seq = _index_sequences(build_spy, left_list, inverse_right)
        _assert_valid_progression(left_seq, len(left_list))
        _assert_valid_progression(right_seq, len(right_list))

    def test_both_candidate_branches_are_taken(self, build_spy):
        """The pair is asymmetric enough that both sides win at least once."""
        left, right = _equivalent_pair()
        check_equivalence(left, right, strategy="lookahead")
        left_list = list(left.remove_final_measurements().gate_instructions())
        right_list = list(right.remove_final_measurements().gate_instructions())
        inverse_right = [_inverse_instruction(instruction) for instruction in right_list]
        left_seq, right_seq = _index_sequences(build_spy, left_list, inverse_right)
        assert left_seq, "no left gate was ever applied"
        assert right_seq, "no right gate was ever applied"

    def test_non_equivalent_pair_is_detected(self):
        left, right = _equivalent_pair()
        right.z(1)
        result = check_equivalence(left, right, strategy="lookahead")
        assert result.criterion.value == "not_equivalent"

    def test_lookahead_agrees_with_static_strategies(self):
        left, right = _equivalent_pair()
        verdicts = {
            strategy: check_equivalence(left, right, strategy=strategy).criterion
            for strategy in ("naive", "one_to_one", "proportional", "lookahead")
        }
        assert len(set(verdicts.values())) == 1, verdicts

    def test_one_sided_pairs_exhaust_the_other_side(self):
        """Tail branches (one list exhausted) must drain the remaining gates."""
        empty = QuantumCircuit(2, name="empty")
        cancelling = QuantumCircuit(2, name="cancelling")
        cancelling.cx(0, 1)
        cancelling.cx(0, 1)
        assert check_equivalence(empty, cancelling, strategy="lookahead").equivalent
        assert check_equivalence(cancelling, empty, strategy="lookahead").equivalent


class TestMaxNodesReporting:
    def test_max_nodes_is_a_running_maximum(self):
        left, right = _equivalent_pair()
        result = check_equivalence(left, right, strategy="lookahead")
        details = result.details
        # The product starts as the identity (one node per qubit) and ends
        # there again for an equivalent pair; the running maximum must cover
        # both endpoints.
        assert details["max_nodes"] >= details["final_nodes"]
        assert details["max_nodes"] >= left.num_qubits

    def test_max_nodes_reported_for_all_strategies(self):
        left, right = _equivalent_pair()
        for strategy in ("naive", "one_to_one", "proportional", "lookahead"):
            details = check_equivalence(left, right, strategy=strategy).details
            assert details["max_nodes"] >= details["final_nodes"] >= 0


def test_lookahead_on_dense_backend_degenerates_to_proportional():
    left, right = _equivalent_pair()
    configuration = Configuration(strategy="lookahead", backend="dense")
    result = check_equivalence(left, right, configuration)
    assert result.equivalent
    assert result.strategy == "lookahead"
