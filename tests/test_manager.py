"""Tests for the portfolio verification manager."""

import pytest

from repro.algorithms import (
    bernstein_vazirani_dynamic,
    bernstein_vazirani_static,
    ghz_ladder,
    ghz_with_bug,
    qft_dynamic,
    qft_static_benchmark,
    teleportation_dynamic,
    teleportation_static,
)
from repro.circuit import QuantumCircuit
from repro.core import (
    Configuration,
    EquivalenceCheckingManager,
    EquivalenceCriterion,
    check_equivalence,
    verify_batch,
    verify_portfolio,
)
from repro.core import chunk_pairs
from repro.core.manager import DEFAULT_PORTFOLIO
from repro.core.results import CheckerAttempt, EquivalenceCheckResult
from repro.exceptions import EquivalenceCheckingError

SEED = 1234


def _ghz_pair():
    """Two builds of the *same* ladder circuit (unitarily equivalent)."""
    return ghz_ladder(4), ghz_ladder(4)


def _seed_pairs():
    """The seed algorithm pairs named by the issue: GHZ, teleportation, dynamic BV."""
    return [
        _ghz_pair(),
        (teleportation_static(), teleportation_dynamic()),
        (bernstein_vazirani_static("1011"), bernstein_vazirani_dynamic("1011")),
    ]


class TestConfiguration:
    def test_unknown_portfolio_checker_rejected(self):
        with pytest.raises(EquivalenceCheckingError):
            Configuration(portfolio=("alternating", "magic"))

    def test_empty_portfolio_rejected(self):
        with pytest.raises(EquivalenceCheckingError):
            Configuration(portfolio=())

    def test_duplicate_portfolio_rejected(self):
        with pytest.raises(EquivalenceCheckingError):
            Configuration(portfolio=("simulation", "simulation"))

    def test_portfolio_normalized_to_tuple(self):
        configuration = Configuration(portfolio=["simulation", "construction"])
        assert configuration.portfolio == ("simulation", "construction")

    def test_non_positive_timeouts_rejected(self):
        with pytest.raises(EquivalenceCheckingError):
            Configuration(timeout=0.0)
        with pytest.raises(EquivalenceCheckingError):
            Configuration(checker_timeout=-1.0)

    def test_max_workers_validated(self):
        with pytest.raises(EquivalenceCheckingError):
            Configuration(max_workers=0)

    def test_default_portfolio(self):
        manager = EquivalenceCheckingManager()
        assert manager.portfolio == DEFAULT_PORTFOLIO
        assert manager.portfolio[0] == "simulation"


class TestEarlyTermination:
    def test_falsifier_decides_non_equivalent_pairs(self):
        manager = EquivalenceCheckingManager(seed=SEED)
        result = manager.run(ghz_ladder(4), ghz_with_bug(4))
        assert result.criterion is EquivalenceCriterion.NOT_EQUIVALENT
        assert result.decided_by == "simulation"
        statuses = {attempt.method: attempt.status for attempt in result.attempts}
        assert statuses["simulation"] == "completed"
        assert statuses["alternating"] == "skipped"

    def test_prover_decides_equivalent_pairs(self):
        manager = EquivalenceCheckingManager(seed=SEED)
        result = manager.run(*_ghz_pair())
        # Simulation alone cannot prove equivalence; the alternating checker
        # must deliver the definitive verdict.
        assert result.decided_by == "alternating"
        assert result.criterion is EquivalenceCriterion.EQUIVALENT
        simulation = result.attempts[0]
        assert simulation.method == "simulation"
        assert simulation.result.criterion is EquivalenceCriterion.PROBABLY_EQUIVALENT

    def test_simulation_only_portfolio_stays_indicative(self):
        manager = EquivalenceCheckingManager(seed=SEED, portfolio=("simulation",))
        result = manager.run(*_ghz_pair())
        assert result.criterion is EquivalenceCriterion.PROBABLY_EQUIVALENT
        assert result.decided_by is None
        assert "indicative" in result.reason

    def test_result_property_returns_decider_result(self):
        manager = EquivalenceCheckingManager(seed=SEED)
        result = manager.run(*_ghz_pair())
        assert result.result is not None
        assert result.result.method == result.decided_by

    def test_checker_error_is_isolated(self):
        # Dynamic circuits with transformation disabled make every functional
        # checker raise; the portfolio must record the errors, not propagate.
        manager = EquivalenceCheckingManager(
            seed=SEED, transform_dynamic=False, portfolio=("alternating", "construction")
        )
        result = manager.run(teleportation_static(), teleportation_dynamic())
        assert result.criterion is EquivalenceCriterion.NO_INFORMATION
        assert all(attempt.status == "error" for attempt in result.attempts)
        assert result.decided_by is None


class TestIndicativeFallback:
    def _stub_checker(self, manager, criteria_by_method):
        def run_checker(method, first, second, qubit_permutation, budget):
            return CheckerAttempt(
                method=method,
                status="completed",
                result=EquivalenceCheckResult(
                    criterion=criteria_by_method[method], method=method
                ),
            )

        manager._run_checker = run_checker

    def test_later_probably_equivalent_beats_earlier_no_information(self):
        # Regression: the manager used to keep only the *first* indicative
        # criterion, so a NO_INFORMATION from an early checker shadowed a
        # later PROBABLY_EQUIVALENT, contradicting the "best indicative"
        # fallback promised by the docstring.
        manager = EquivalenceCheckingManager(
            seed=SEED, portfolio=("alternating", "simulation")
        )
        self._stub_checker(
            manager,
            {
                "alternating": EquivalenceCriterion.NO_INFORMATION,
                "simulation": EquivalenceCriterion.PROBABLY_EQUIVALENT,
            },
        )
        result = manager.run(*_ghz_pair())
        assert result.criterion is EquivalenceCriterion.PROBABLY_EQUIVALENT
        assert result.decided_by is None
        assert "simulation" in result.reason

    def test_earlier_probably_equivalent_not_downgraded(self):
        manager = EquivalenceCheckingManager(
            seed=SEED, portfolio=("simulation", "alternating")
        )
        self._stub_checker(
            manager,
            {
                "simulation": EquivalenceCriterion.PROBABLY_EQUIVALENT,
                "alternating": EquivalenceCriterion.NO_INFORMATION,
            },
        )
        result = manager.run(*_ghz_pair())
        assert result.criterion is EquivalenceCriterion.PROBABLY_EQUIVALENT
        assert "simulation" in result.reason


class TestPortfolioAgreement:
    @pytest.mark.parametrize("pair_index", range(3))
    def test_portfolio_agrees_with_every_single_method(self, pair_index):
        first, second = _seed_pairs()[pair_index]
        portfolio = ("simulation", "alternating", "construction")
        manager = EquivalenceCheckingManager(seed=SEED, portfolio=portfolio)
        combined = manager.run(first, second)
        for method in portfolio:
            single = check_equivalence(first, second, method=method, seed=SEED)
            assert single.equivalent == combined.equivalent, method

    def test_portfolio_agrees_on_non_equivalent_seed_pair(self):
        first = bernstein_vazirani_static("1011")
        second = bernstein_vazirani_dynamic("1111")
        manager = EquivalenceCheckingManager(seed=SEED)
        combined = manager.run(first, second)
        assert not combined.equivalent
        for method in DEFAULT_PORTFOLIO:
            assert not check_equivalence(first, second, method=method, seed=SEED).equivalent


class TestTimeouts:
    def test_checker_timeout_moves_on(self):
        manager = EquivalenceCheckingManager(
            portfolio=("alternating",), checker_timeout=0.002, seed=SEED
        )
        result = manager.run(qft_static_benchmark(12), qft_dynamic(12))
        assert result.attempts[0].status == "timeout"
        assert result.criterion is EquivalenceCriterion.NO_INFORMATION

    def test_overall_timeout_skips_remaining_checkers(self):
        manager = EquivalenceCheckingManager(
            portfolio=("alternating", "construction"), timeout=0.002, seed=SEED
        )
        result = manager.run(qft_static_benchmark(12), qft_dynamic(12))
        statuses = [attempt.status for attempt in result.attempts]
        assert "skipped" in statuses or statuses == ["timeout", "timeout"]
        assert "timeout" in result.reason or result.decided_by is None


class TestBatch:
    def test_batch_preserves_input_order(self):
        pairs = []
        for index in range(6):
            first = ghz_ladder(2 + index % 3)
            first.name = f"first-{index}"
            second = ghz_ladder(2 + index % 3)
            second.name = f"second-{index}"
            pairs.append((first, second))
        batch = EquivalenceCheckingManager(seed=SEED, max_workers=3).verify_batch(pairs)
        assert [entry.index for entry in batch.entries] == list(range(6))
        assert [entry.name_first for entry in batch.entries] == [
            f"first-{i}" for i in range(6)
        ]
        assert batch.all_equivalent

    def test_batch_isolates_per_pair_failures(self):
        good = _ghz_pair()
        mismatched = (ghz_ladder(2), ghz_ladder(3))  # different qubit counts
        batch = EquivalenceCheckingManager(seed=SEED).verify_batch(
            [good, mismatched, good]
        )
        assert batch.num_pairs == 3
        assert batch.entries[0].equivalent
        assert batch.entries[2].equivalent
        middle = batch.entries[1]
        assert not middle.equivalent
        assert middle.result.criterion is EquivalenceCriterion.NO_INFORMATION
        assert all(attempt.status == "error" for attempt in middle.result.attempts)
        # Undecided pairs count as failed, not as a non-equivalence finding.
        assert batch.num_failed == 1
        assert batch.num_not_equivalent == 0

    def test_batch_records_unexpected_run_failures(self, monkeypatch):
        manager = EquivalenceCheckingManager(seed=SEED)

        def explode(first, second, **kwargs):
            raise RuntimeError("boom")

        monkeypatch.setattr(manager, "run", explode)
        batch = manager.verify_batch([_ghz_pair()])
        entry = batch.entries[0]
        assert entry.result is None
        assert "boom" in entry.error
        assert batch.num_failed == 1

    def test_batch_verifies_twenty_pairs_concurrently_with_timings(self):
        pairs = []
        for index in range(10):
            pairs.append((ghz_ladder(2 + index % 4), ghz_ladder(2 + index % 4)))
        for bits in ("101", "110", "0110", "1011", "11"):
            pairs.append(
                (bernstein_vazirani_static(bits), bernstein_vazirani_dynamic(bits))
            )
        for theta in (0.3, 0.7, 1.1):
            pairs.append((teleportation_static(theta), teleportation_dynamic(theta)))
        pairs.append((ghz_ladder(3), ghz_with_bug(3)))
        pairs.append(
            (bernstein_vazirani_static("101"), bernstein_vazirani_dynamic("111"))
        )
        assert len(pairs) >= 20

        batch = EquivalenceCheckingManager(seed=SEED, max_workers=4).verify_batch(pairs)
        assert batch.num_pairs == len(pairs)
        assert batch.max_workers == 4
        assert batch.num_equivalent == len(pairs) - 2
        assert batch.num_not_equivalent == 2
        assert batch.num_failed == 0
        assert all(entry.time_taken > 0.0 for entry in batch.entries)
        assert batch.total_time > 0.0
        summary = batch.summary()
        assert summary["num_pairs"] == len(pairs)
        assert summary["max_pair_time"] >= summary["mean_pair_time"] > 0.0


def _mixed_batch_pairs():
    """A >=20-pair batch mixing equivalent, non-equivalent and dynamic pairs."""
    pairs = []
    for index in range(10):
        pairs.append((ghz_ladder(2 + index % 4), ghz_ladder(2 + index % 4)))
    for bits in ("101", "110", "0110", "1011", "11"):
        pairs.append((bernstein_vazirani_static(bits), bernstein_vazirani_dynamic(bits)))
    for theta in (0.3, 0.7, 1.1):
        pairs.append((teleportation_static(theta), teleportation_dynamic(theta)))
    pairs.append((ghz_ladder(3), ghz_with_bug(3)))
    pairs.append((bernstein_vazirani_static("101"), bernstein_vazirani_dynamic("111")))
    assert len(pairs) >= 20
    return pairs


class TestProcessExecutor:
    def test_chunk_pairs_shards_and_indexes(self):
        pairs = [(ghz_ladder(2), ghz_ladder(2)) for _ in range(5)]
        chunks = list(chunk_pairs(pairs, 2))
        assert [len(chunk) for chunk in chunks] == [2, 2, 1]
        assert [index for chunk in chunks for index, _, _ in chunk] == list(range(5))

    def test_chunk_pairs_rejects_bad_size(self):
        with pytest.raises(ValueError):
            list(chunk_pairs([], 0))

    def test_invalid_executor_rejected(self):
        with pytest.raises(EquivalenceCheckingError):
            Configuration(executor="greenlet")
        with pytest.raises(EquivalenceCheckingError):
            Configuration(batch_chunk_size=0)

    def test_process_batch_matches_thread_batch_on_mixed_pairs(self):
        # Acceptance criterion: entry-for-entry identical criteria between the
        # thread and process executors on a >=20-pair mixed batch.
        pairs = _mixed_batch_pairs()
        thread_batch = EquivalenceCheckingManager(
            seed=SEED, executor="thread", max_workers=4
        ).verify_batch(pairs)
        process_batch = EquivalenceCheckingManager(
            seed=SEED, executor="process", max_workers=4, batch_chunk_size=3
        ).verify_batch(pairs)
        assert process_batch.executor == "process"
        assert process_batch.num_pairs == thread_batch.num_pairs == len(pairs)
        for thread_entry, process_entry in zip(
            thread_batch.entries, process_batch.entries
        ):
            assert process_entry.index == thread_entry.index
            assert process_entry.name_first == thread_entry.name_first
            assert process_entry.error is None and thread_entry.error is None
            assert (
                process_entry.result.criterion is thread_entry.result.criterion
            ), process_entry.index
            assert (
                process_entry.result.decided_by == thread_entry.result.decided_by
            ), process_entry.index

    def test_process_batch_preserves_input_order_with_chunking(self):
        pairs = []
        for index in range(7):
            first = ghz_ladder(2 + index % 3)
            first.name = f"first-{index}"
            second = ghz_ladder(2 + index % 3)
            second.name = f"second-{index}"
            pairs.append((first, second))
        batch = EquivalenceCheckingManager(
            seed=SEED, executor="process", max_workers=2, batch_chunk_size=3
        ).verify_batch(pairs)
        assert [entry.index for entry in batch.entries] == list(range(7))
        assert [entry.name_first for entry in batch.entries] == [
            f"first-{i}" for i in range(7)
        ]
        assert batch.all_equivalent

    def test_process_batch_isolates_per_pair_failures(self):
        good = _ghz_pair()
        mismatched = (ghz_ladder(2), ghz_ladder(3))
        batch = EquivalenceCheckingManager(
            seed=SEED, executor="process", max_workers=2
        ).verify_batch([good, mismatched, good])
        assert batch.entries[0].equivalent
        assert batch.entries[2].equivalent
        middle = batch.entries[1]
        assert not middle.equivalent
        assert middle.result.criterion is EquivalenceCriterion.NO_INFORMATION
        assert batch.num_failed == 1

    def test_process_batch_isolates_unpicklable_pairs(self):
        from repro.circuit.gates import XGate

        class LocalGate(XGate):
            """Defined inside the test, hence unimportable and unpicklable."""

        good = _ghz_pair()
        poison_first = ghz_ladder(2)
        poison_first.append(LocalGate(), [0])
        batch = EquivalenceCheckingManager(
            seed=SEED, executor="process", max_workers=2
        ).verify_batch([good, (poison_first, ghz_ladder(2)), good])
        assert batch.entries[0].equivalent
        assert batch.entries[2].equivalent
        assert batch.entries[1].result is None
        assert batch.entries[1].error is not None
        assert batch.num_failed == 1


class TestConvenienceWrappers:
    def test_verify_portfolio(self):
        result = verify_portfolio(*_ghz_pair(), seed=SEED)
        assert result.equivalent

    def test_verify_batch(self):
        batch = verify_batch([_ghz_pair()], seed=SEED, max_workers=2)
        assert batch.all_equivalent
        assert batch.num_pairs == 1
