"""Integration tests for end-to-end tracing (PR 10).

Covers the two acceptance criteria of the observability PR:

* a seeded ``verify_batch`` produces *structurally identical* span trees —
  same span names, parentage and checker attempts — on the thread and the
  process executor (hypothesis property over random seeded batches);
* a client-supplied W3C ``traceparent`` travels through both HTTP backends
  into job execution and comes back from ``GET /jobs/<id>/trace``.
"""

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import ghz_ladder, ghz_with_bug
from repro.circuit import QuantumCircuit
from repro.core import Configuration, EquivalenceCheckingManager
from repro.obs import trace


def _random_pair(rng: random.Random):
    """A small random circuit and an equally-built twin (equivalent pair)."""
    qubits = rng.randint(1, 3)
    first = QuantumCircuit(qubits)
    second = QuantumCircuit(qubits)
    for _ in range(rng.randint(1, 4)):
        gate = rng.choice(["h", "x", "z", "cx"])
        if gate == "cx" and qubits >= 2:
            control = rng.randrange(qubits - 1)
            for circuit in (first, second):
                circuit.cx(control, control + 1)
        else:
            target = rng.randrange(qubits)
            for circuit in (first, second):
                getattr(circuit, gate if gate != "cx" else "x")(target)
    return first, second


def _shape(node: dict):
    """(name, checker, children-shapes) — structure without ids or timings."""
    children = sorted(_shape(child) for child in node["children"])
    return (node["name"], (node.get("attrs") or {}).get("checker"), children)


def _traced_batch(executor: str, pairs):
    configuration = Configuration(
        executor=executor, max_workers=2, seed=99, verdict_cache=False
    )
    manager = EquivalenceCheckingManager(configuration)
    tracer = trace.Tracer()
    with trace.activate(tracer):
        batch = manager.verify_batch(pairs)
    tree = trace.span_tree(tracer.export())
    verdicts = [entry.result.criterion.value for entry in batch.entries]
    return sorted(_shape(node) for node in tree), verdicts


class TestSpanTreeParity:
    @settings(max_examples=3, deadline=None)
    @given(st.integers(min_value=0, max_value=2**16))
    def test_thread_and_process_span_trees_match(self, seed):
        rng = random.Random(seed)
        pairs = [_random_pair(rng) for _ in range(rng.randint(2, 4))]
        thread_shape, thread_verdicts = _traced_batch("thread", pairs)
        process_shape, process_verdicts = _traced_batch("process", pairs)
        assert thread_verdicts == process_verdicts
        assert thread_shape == process_shape

    def test_batch_span_structure(self):
        pairs = [(ghz_ladder(3), ghz_ladder(3)), (ghz_ladder(3), ghz_with_bug(3))]
        shapes, _ = _traced_batch("thread", pairs)
        ((root_name, _, children),) = shapes
        assert root_name == "manager.verify_batch"
        names = [name for name, _, _ in children]
        assert names.count("manager.run") == 2
        assert names.count("scheduler.decide") == 2

    def test_worker_spans_carry_worker_pid(self):
        pairs = [(ghz_ladder(3), ghz_ladder(3))]
        configuration = Configuration(
            executor="process", max_workers=1, verdict_cache=False
        )
        manager = EquivalenceCheckingManager(configuration)
        tracer = trace.Tracer()
        with trace.activate(tracer):
            manager.verify_batch(pairs)
        import os

        pids = {span["pid"] for span in tracer.export()}
        assert os.getpid() in pids  # parent spans (verify_batch, scheduling)
        assert len(pids) > 1  # plus at least one worker process


class TestWorkerDDStatistics:
    def test_process_batch_harvests_worker_dd_statistics(self):
        pairs = [(ghz_ladder(3), ghz_ladder(3)), (ghz_ladder(4), ghz_ladder(4))]
        configuration = Configuration(
            executor="process", max_workers=2, verdict_cache=False
        )
        manager = EquivalenceCheckingManager(configuration)
        manager.verify_batch(pairs)
        statistics = manager.dd_statistics()
        assert statistics, "worker DD statistics were not harvested"
        total = sum(
            stats.get("gate_cache_hits", 0) + stats.get("gate_cache_misses", 0)
            for stats in statistics.values()
        )
        assert total > 0


@pytest.mark.parametrize("backend", ["thread", "async"])
class TestTraceparentEndToEnd:
    def _server(self, backend):
        if backend == "async":
            from repro.service.aserver import AsyncVerificationServer

            return AsyncVerificationServer(port=0)
        from repro.service.server import VerificationServer

        return VerificationServer(port=0)

    def test_client_traceparent_reaches_job_trace(self, backend):
        from repro.service.client import VerificationClient

        server = self._server(backend)
        server.start_background()
        try:
            client = VerificationClient(server.url)
            qasm = ghz_ladder(3).to_qasm()
            tracer = trace.Tracer()
            with trace.activate(tracer):
                with trace.span("client.verify"):
                    submission = client.submit(qasm, qasm)
                    client.wait(submission["job_id"], timeout=30.0)
            payload = client.trace(submission["job_id"])
            assert payload["trace_id"] == tracer.trace_id
            assert payload["spans"] > 0
            names = set()

            def walk(nodes):
                for node in nodes:
                    names.add(node["name"])
                    walk(node["children"])

            walk(payload["tree"])
            assert "job.execute" in names
            assert "manager.run" in names
        finally:
            server.close()

    def test_untraced_submission_roots_a_fresh_trace(self, backend):
        from repro.service.client import VerificationClient

        server = self._server(backend)
        server.start_background()
        try:
            client = VerificationClient(server.url)
            qasm = ghz_ladder(3).to_qasm()
            submission = client.submit(qasm, qasm)
            client.wait(submission["job_id"], timeout=30.0)
            payload = client.trace(submission["job_id"])
            assert payload["trace_id"]
            assert payload["traceparent"] is None
            assert payload["tree"]
        finally:
            server.close()


class TestServerTraceEndpointErrors:
    def test_unknown_job_is_404(self):
        from repro.exceptions import ServiceError
        from repro.service.server import VerificationService

        service = VerificationService()
        try:
            with pytest.raises(ServiceError) as excinfo:
                service.job_trace("job-999999")
            assert excinfo.value.status == 404
        finally:
            service.shutdown(wait=False)

    def test_malformed_traceparent_is_ignored(self):
        from repro.service.server import VerificationService

        service = VerificationService()
        try:
            qasm = ghz_ladder(3).to_qasm()
            submission = service.submit_qasm(qasm, qasm, traceparent="garbage")
            assert service.wait_settled(submission["job_id"], 30.0)
            payload = service.job_trace(submission["job_id"])
            assert payload["traceparent"] is None
            assert payload["trace_id"]
        finally:
            service.shutdown(wait=False)

    def test_trace_spans_metric_counts(self):
        from repro.service.server import VerificationService

        service = VerificationService()
        try:
            qasm = ghz_ladder(3).to_qasm()
            submission = service.submit_qasm(qasm, qasm)
            assert service.wait_settled(submission["job_id"], 30.0)
            rendered = service.metrics.render()
            (line,) = [
                l
                for l in rendered.splitlines()
                if l.startswith("repro_trace_spans_total")
            ]
            assert float(line.split()[-1]) > 0
            stats = service.stats()
            assert stats["telemetry"] is None  # no journal configured
        finally:
            service.shutdown(wait=False)


class TestCliTraceExport:
    def test_verify_json_embeds_trace_and_exports_chrome(self, tmp_path, capsys):
        from repro.cli import main

        qasm = ghz_ladder(3).to_qasm()
        first = tmp_path / "a.qasm"
        second = tmp_path / "b.qasm"
        first.write_text(qasm, encoding="utf-8")
        second.write_text(qasm, encoding="utf-8")
        assert (
            main(
                [
                    "verify",
                    str(first),
                    str(second),
                    "--scheduler",
                    "adaptive",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["trace"]["tree"][0]["name"] == "manager.run"

        out_file = tmp_path / "verify.json"
        out_file.write_text(json.dumps(payload), encoding="utf-8")
        chrome_file = tmp_path / "chrome.json"
        assert main(["trace", str(out_file), "-o", str(chrome_file)]) == 0
        chrome = json.loads(chrome_file.read_text(encoding="utf-8"))
        names = {event["name"] for event in chrome["traceEvents"]}
        assert "manager.run" in names
        assert "checker.run" in names
        assert all(event["ph"] == "X" for event in chrome["traceEvents"])

    def test_trace_command_rejects_spanless_input(self, tmp_path, capsys):
        from repro.cli import main

        empty = tmp_path / "empty.json"
        empty.write_text("{}", encoding="utf-8")
        assert main(["trace", str(empty)]) == 2
        assert "no spans" in capsys.readouterr().err
