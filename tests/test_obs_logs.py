"""Unit tests for the structured JSON logging layer (repro.obs.logs)."""

import io
import json
import logging

from repro.obs import trace
from repro.obs.logs import configure_logging, fields, get_logger


def _reset_logging():
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        root.removeHandler(handler)
        handler.close()
    root.setLevel(logging.NOTSET)
    root.propagate = True


class TestConfigureLogging:
    def teardown_method(self):
        _reset_logging()

    def _capture(self, level="info"):
        stream = io.StringIO()
        configure_logging(level=level, stream=stream)
        return stream

    def test_lines_are_json_with_fields(self):
        stream = self._capture()
        get_logger("test.module").info("hello", **fields(key="value", n=3))
        (line,) = stream.getvalue().splitlines()
        payload = json.loads(line)
        assert payload["message"] == "hello"
        assert payload["level"] == "info"
        assert payload["logger"] == "repro.test.module"
        assert payload["key"] == "value"
        assert payload["n"] == 3
        assert "ts" in payload

    def test_trace_correlation(self):
        stream = self._capture()
        tracer = trace.Tracer()
        with trace.activate(tracer):
            with trace.span("logging") as span:
                get_logger("test.corr").info("inside span")
        payload = json.loads(stream.getvalue().splitlines()[0])
        assert payload["trace_id"] == tracer.trace_id
        assert payload["span_id"] == span.span_id

    def test_no_correlation_outside_span(self):
        stream = self._capture()
        get_logger("test.nocorr").info("outside")
        payload = json.loads(stream.getvalue().splitlines()[0])
        assert "trace_id" not in payload

    def test_level_filtering(self):
        stream = self._capture(level="warning")
        logger = get_logger("test.level")
        logger.info("suppressed")
        logger.warning("emitted")
        lines = stream.getvalue().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["message"] == "emitted"

    def test_reconfigure_replaces_handler(self):
        first = io.StringIO()
        second = io.StringIO()
        configure_logging(stream=first)
        configure_logging(stream=second)
        get_logger("test.swap").info("where")
        assert first.getvalue() == ""
        assert second.getvalue() != ""

    def test_log_file(self, tmp_path):
        path = tmp_path / "run.log"
        configure_logging(level="info", path=str(path))
        get_logger("test.file").info("to disk")
        payload = json.loads(path.read_text(encoding="utf-8").splitlines()[0])
        assert payload["message"] == "to disk"

    def test_unknown_level_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            configure_logging(level="loud")

    def test_exception_rendering(self):
        stream = self._capture()
        try:
            raise RuntimeError("kaboom")
        except RuntimeError:
            get_logger("test.exc").exception("failed")
        payload = json.loads(stream.getvalue().splitlines()[0])
        assert "kaboom" in payload["exception"]


class TestLibraryQuiet:
    def test_no_output_without_configuration(self, capsys):
        _reset_logging()
        logging.getLogger("repro").propagate = False
        try:
            get_logger("test.quiet").info("should vanish")
        finally:
            logging.getLogger("repro").propagate = True
        captured = capsys.readouterr()
        assert "should vanish" not in captured.err

    def test_get_logger_prefixes_names(self):
        assert get_logger("core.manager").name == "repro.core.manager"
        assert get_logger("repro.service").name == "repro.service"
