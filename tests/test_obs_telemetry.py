"""Tests for the run-telemetry journal (repro.obs.telemetry)."""

from repro.algorithms import ghz_ladder, ghz_with_bug
from repro.core import Configuration, EquivalenceCheckingManager
from repro.obs.telemetry import SCHEMA_VERSION, TelemetryJournal, summarize_records


def _manager(tmp_path, **overrides):
    configuration = Configuration(
        telemetry_path=str(tmp_path / "runs.telemetry.jsonl"), **overrides
    )
    return EquivalenceCheckingManager(configuration)


class TestRunRecording:
    def test_every_settled_run_appends_a_record(self, tmp_path):
        manager = _manager(tmp_path)
        manager.run(ghz_ladder(3), ghz_ladder(3))
        manager.run(ghz_ladder(3), ghz_with_bug(3))
        records = manager.telemetry.replay()
        assert len(records) == 2
        assert all(record["v"] == SCHEMA_VERSION for record in records)
        assert all(record["kind"] == "run" for record in records)
        assert records[0]["verdict"] != records[1]["verdict"]

    def test_record_shape(self, tmp_path):
        manager = _manager(tmp_path, scheduler="adaptive")
        manager.run(ghz_ladder(3), ghz_ladder(3))
        (record,) = manager.telemetry.replay()
        assert record["scheduler"] == "adaptive"
        assert record["schedule"]
        assert record["decided_by"] in record["schedule"]
        assert record["total_time"] >= 0.0
        assert record["attempts"]
        for attempt in record["attempts"]:
            assert set(attempt) >= {"checker", "status", "time"}
        assert "breakers" in record

    def test_cache_hits_are_recorded_with_provenance(self, tmp_path):
        manager = _manager(tmp_path, verdict_cache=True, seed=11)
        first, second = ghz_ladder(3), ghz_ladder(3)
        manager.run(first, second)
        manager.run(first, second)
        records = manager.telemetry.replay()
        assert len(records) == 2
        assert records[0]["cached"] is False
        assert records[1]["cached"] is True
        assert records[1]["cached_via"] is not None

    def test_batch_runs_are_recorded_once_per_pair(self, tmp_path):
        manager = _manager(tmp_path)
        pairs = [(ghz_ladder(3), ghz_ladder(3)), (ghz_ladder(3), ghz_with_bug(3))]
        manager.verify_batch(pairs)
        assert len(manager.telemetry.replay()) == 2

    def test_process_batch_records_in_parent(self, tmp_path):
        manager = _manager(tmp_path, executor="process", max_workers=2)
        pairs = [(ghz_ladder(3), ghz_ladder(3)), (ghz_ladder(3), ghz_with_bug(3))]
        manager.verify_batch(pairs)
        records = manager.telemetry.replay()
        assert len(records) == 2

    def test_write_failure_degrades_without_raising(self, tmp_path):
        journal = TelemetryJournal(
            tmp_path / "t.jsonl",
            write_hook=lambda: (_ for _ in ()).throw(OSError("disk full")),
        )
        assert journal.record_run({"kind": "run"}) is False
        assert journal.statistics()["append_errors"] == 1


class TestSummaries:
    def test_summarize_records(self):
        records = [
            {
                "kind": "run",
                "verdict": "equivalent",
                "scheduler": "static",
                "total_time": 0.5,
                "cached": False,
                "attempts": [
                    {"checker": "simulation", "status": "completed", "time": 0.2},
                    {"checker": "alternating", "status": "completed", "time": 0.3},
                ],
                "decided_by": "alternating",
            },
            {
                "kind": "run",
                "verdict": "equivalent",
                "scheduler": "static",
                "total_time": 0.0,
                "cached": True,
                "cached_via": "fingerprint",
                "attempts": [],
            },
        ]
        summary = summarize_records(records)
        assert summary["runs"] == 2
        assert summary["verdicts"] == {"equivalent": 2}
        assert summary["cache"]["fresh"] == 1
        assert summary["cache"]["fingerprint"] == 1
        checkers = summary["checkers"]
        assert checkers["alternating"]["decisions"] == 1
        assert checkers["simulation"]["attempts"] == 1

    def test_journal_summarize_round_trip(self, tmp_path):
        manager = _manager(tmp_path)
        manager.run(ghz_ladder(3), ghz_ladder(3))
        summary = manager.telemetry.summarize()
        assert summary["runs"] == 1
        assert sum(summary["verdicts"].values()) == 1

    def test_journal_survives_restart(self, tmp_path):
        path = tmp_path / "restart.jsonl"
        journal = TelemetryJournal(path)
        journal.record_run({"kind": "run", "verdict": "equivalent", "attempts": []})
        reopened = TelemetryJournal(path)
        assert len(reopened.replay()) == 1


class TestCliVerifyRouting:
    def test_plain_verify_with_telemetry_records_a_run(self, tmp_path, capsys):
        """--telemetry routes through the manager even with no portfolio,
        scheduler, timeout or cache flag — a record always lands."""
        from repro.cli import main

        qasm = ghz_ladder(3).to_qasm()
        first = tmp_path / "a.qasm"
        second = tmp_path / "b.qasm"
        first.write_text(qasm, encoding="utf-8")
        second.write_text(qasm, encoding="utf-8")
        path = tmp_path / "runs.jsonl"
        assert (
            main(["verify", str(first), str(second), "--telemetry", str(path)])
            == 0
        )
        capsys.readouterr()
        assert len(TelemetryJournal(path).replay()) == 1


class TestCliSummarize:
    def test_telemetry_summarize_command(self, tmp_path, capsys):
        from repro.cli import main

        manager = _manager(tmp_path)
        manager.run(ghz_ladder(3), ghz_ladder(3))
        path = str(tmp_path / "runs.telemetry.jsonl")
        assert main(["telemetry", "summarize", path]) == 0
        out = capsys.readouterr().out
        assert "runs: 1" in out

    def test_telemetry_summarize_json(self, tmp_path, capsys):
        import json

        from repro.cli import main

        manager = _manager(tmp_path)
        manager.run(ghz_ladder(3), ghz_ladder(3))
        path = str(tmp_path / "runs.telemetry.jsonl")
        assert main(["telemetry", "summarize", path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["runs"] == 1

    def test_missing_journal_is_an_error(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["telemetry", "summarize", str(tmp_path / "absent.jsonl")]) == 2
        assert "error" in capsys.readouterr().err
