"""Unit tests for the tracing core (repro.obs.trace)."""

import contextvars
import threading

import pytest

from repro.obs import trace


class TestTraceparent:
    def test_format_and_parse_round_trip(self):
        tracer = trace.Tracer()
        header = tracer.traceparent
        parsed = trace.parse_traceparent(header)
        assert parsed is not None
        trace_id, span_id = parsed
        assert trace_id == tracer.trace_id

    def test_parse_rejects_garbage(self):
        assert trace.parse_traceparent("nonsense") is None
        assert trace.parse_traceparent("") is None
        assert trace.parse_traceparent("00-zz-yy-01") is None

    def test_parse_rejects_all_zero_ids(self):
        zeros = "00-" + "0" * 32 + "-" + "0" * 16 + "-01"
        assert trace.parse_traceparent(zeros) is None

    def test_from_traceparent_continues_trace(self):
        parent = trace.Tracer()
        header = parent.traceparent
        child = trace.Tracer.from_traceparent(header)
        assert child.trace_id == parent.trace_id


class TestSpans:
    def test_spans_nest_under_active_scope(self):
        tracer = trace.Tracer()
        with trace.activate(tracer):
            with trace.span("outer") as outer:
                with trace.span("inner") as inner:
                    assert inner.parent_id == outer.span_id
        spans = tracer.export()
        assert [s["name"] for s in spans] == ["inner", "outer"]
        assert spans[0]["parent_id"] == spans[1]["span_id"]
        assert all(s["trace_id"] == tracer.trace_id for s in spans)

    def test_span_without_scope_is_noop(self):
        with trace.span("orphan") as span:
            span.set_attr("key", "value")  # must not raise
            span.add_event("event")
        assert span.span_id is None

    def test_activate_none_is_noop(self):
        with trace.activate(None):
            with trace.span("inside") as span:
                assert span.span_id is None

    def test_exception_marks_span_error(self):
        tracer = trace.Tracer()
        with pytest.raises(ValueError):
            with trace.activate(tracer):
                with trace.span("failing"):
                    raise ValueError("boom")
        (span,) = tracer.export()
        assert span["status"] == "error"
        assert "boom" in span["attrs"]["error"]

    def test_attrs_and_events_recorded(self):
        tracer = trace.Tracer()
        with trace.activate(tracer):
            with trace.span("work", kind="test") as span:
                span.set_attr("extra", 1)
                trace.add_event("milestone", detail="yes")
        (payload,) = tracer.export()
        assert payload["attrs"]["kind"] == "test"
        assert payload["attrs"]["extra"] == 1
        assert payload["events"][0]["name"] == "milestone"

    def test_durations_are_measured(self):
        tracer = trace.Tracer()
        with trace.activate(tracer):
            with trace.span("timed"):
                pass
        (payload,) = tracer.export()
        assert payload["duration"] >= 0.0

    def test_current_traceparent_inside_span(self):
        tracer = trace.Tracer()
        assert trace.current_traceparent() is None
        with trace.activate(tracer):
            with trace.span("active") as span:
                header = trace.current_traceparent()
        parsed = trace.parse_traceparent(header)
        assert parsed == (tracer.trace_id, span.span_id)

    def test_max_spans_bound(self):
        tracer = trace.Tracer(max_spans=2)
        with trace.activate(tracer):
            for index in range(5):
                with trace.span(f"s{index}"):
                    pass
        assert len(tracer.export()) == 2
        assert tracer.dropped == 3

    def test_context_propagates_to_pool_threads_via_copy_context(self):
        tracer = trace.Tracer()
        results = {}

        def worker():
            with trace.span("threaded") as span:
                results["parent"] = span.parent_id

        with trace.activate(tracer):
            with trace.span("main") as outer:
                context = contextvars.copy_context()
                thread = threading.Thread(target=context.run, args=(worker,))
                thread.start()
                thread.join()
        assert results["parent"] == outer.span_id


class TestAdoptAndExport:
    def test_adopt_transports_worker_spans(self):
        parent = trace.Tracer()
        worker = trace.Tracer.from_traceparent(parent.traceparent)
        with trace.activate(worker):
            with trace.span("remote"):
                pass
        parent.adopt(worker.export())
        (payload,) = parent.export()
        assert payload["name"] == "remote"
        assert payload["trace_id"] == parent.trace_id

    def test_adopt_skips_malformed_payloads(self):
        tracer = trace.Tracer()
        tracer.adopt([{"not": "a span"}, 42, None])
        assert tracer.export() == []

    def test_span_tree_nesting(self):
        tracer = trace.Tracer()
        with trace.activate(tracer):
            with trace.span("root"):
                with trace.span("child_a"):
                    pass
                with trace.span("child_b"):
                    pass
        (root,) = trace.span_tree(tracer.export())
        assert root["name"] == "root"
        assert [child["name"] for child in root["children"]] == ["child_a", "child_b"]

    def test_unknown_parent_becomes_root(self):
        spans = [
            {
                "name": "orphan",
                "trace_id": "t",
                "span_id": "a",
                "parent_id": "missing",
                "start": 1.0,
            }
        ]
        roots = trace.span_tree(spans)
        assert [r["name"] for r in roots] == ["orphan"]

    def test_export_chrome_structure(self):
        tracer = trace.Tracer()
        with trace.activate(tracer):
            with trace.span("event", label="x"):
                pass
        chrome = tracer.export_chrome()
        (event,) = chrome["traceEvents"]
        assert event["ph"] == "X"
        assert event["name"] == "event"
        assert event["args"]["label"] == "x"
        assert chrome["otherData"]["trace_id"] == tracer.trace_id

    def test_on_finish_callback(self):
        seen = []
        tracer = trace.Tracer(on_finish=lambda span: seen.append(span.name))
        with trace.activate(tracer):
            with trace.span("watched"):
                pass
        assert seen == ["watched"]
