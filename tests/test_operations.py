"""Tests for instructions and classical conditions."""

import pytest

from repro.circuit.gates import CXGate, HGate, Measure, Reset, XGate
from repro.circuit.operations import ClassicalCondition, Instruction
from repro.exceptions import CircuitError


class TestClassicalCondition:
    def test_bit_values(self):
        condition = ClassicalCondition((0, 2), 0b10)
        assert condition.bit_values == (0, 1)

    def test_is_satisfied(self):
        condition = ClassicalCondition((1,), 1)
        assert condition.is_satisfied([0, 1, 0])
        assert not condition.is_satisfied([0, 0, 0])

    def test_multi_bit_condition(self):
        condition = ClassicalCondition((0, 1), 0b01)
        assert condition.is_satisfied([1, 0])
        assert not condition.is_satisfied([1, 1])
        assert not condition.is_satisfied([0, 0])

    def test_empty_condition_raises(self):
        with pytest.raises(CircuitError):
            ClassicalCondition((), 0)

    def test_duplicate_bits_raise(self):
        with pytest.raises(CircuitError):
            ClassicalCondition((0, 0), 1)

    def test_value_out_of_range_raises(self):
        with pytest.raises(CircuitError):
            ClassicalCondition((0,), 2)


class TestInstruction:
    def test_gate_instruction(self):
        instruction = Instruction(HGate(), (0,))
        assert instruction.is_gate
        assert not instruction.is_dynamic

    def test_measurement_is_dynamic(self):
        instruction = Instruction(Measure(), (0,), (0,))
        assert instruction.is_measurement
        assert instruction.is_dynamic

    def test_reset_is_dynamic(self):
        instruction = Instruction(Reset(), (1,))
        assert instruction.is_reset
        assert instruction.is_dynamic

    def test_conditioned_gate_is_dynamic(self):
        condition = ClassicalCondition((0,), 1)
        instruction = Instruction(XGate(), (0,), condition=condition)
        assert instruction.is_classically_controlled
        assert instruction.is_dynamic

    def test_wrong_qubit_count_raises(self):
        with pytest.raises(CircuitError):
            Instruction(CXGate(), (0,))

    def test_duplicate_qubits_raise(self):
        with pytest.raises(CircuitError):
            Instruction(CXGate(), (1, 1))

    def test_missing_clbit_raises(self):
        with pytest.raises(CircuitError):
            Instruction(Measure(), (0,))

    def test_condition_on_measurement_raises(self):
        condition = ClassicalCondition((0,), 1)
        with pytest.raises(CircuitError):
            Instruction(Measure(), (0,), (0,), condition)

    def test_replace(self):
        instruction = Instruction(XGate(), (0,), condition=ClassicalCondition((0,), 1))
        moved = instruction.replace(qubits=(2,))
        assert moved.qubits == (2,)
        assert moved.condition == instruction.condition
        stripped = instruction.replace(drop_condition=True)
        assert stripped.condition is None

    def test_equality_and_hash(self):
        first = Instruction(XGate(), (0,))
        second = Instruction(XGate(), (0,))
        third = Instruction(XGate(), (1,))
        assert first == second
        assert first != third
        assert len({first, second, third}) == 2

    def test_repr_mentions_condition(self):
        instruction = Instruction(XGate(), (0,), condition=ClassicalCondition((3,), 1))
        assert "if" in repr(instruction)
