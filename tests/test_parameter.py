"""Tests for symbolic parameters: algebra, binding, pickle and QASM round-trips."""

import math
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import QuantumCircuit
from repro.circuit.gates import CRZGate, RZGate, UGate
from repro.circuit.parameter import (
    Parameter,
    ParameterExpression,
    bind_value,
    evaluate_if_bound,
    is_symbolic,
)
from repro.circuit.qasm import circuit_from_qasm, circuit_to_qasm


class TestAlgebra:
    def test_linear_combinations(self):
        theta, phi = Parameter("theta"), Parameter("phi")
        expr = theta / 2 - phi + 0.25
        assert sorted(p.name for p in expr.parameters) == ["phi", "theta"]
        assert expr.bind({"theta": 1.0, "phi": 0.25}) == pytest.approx(0.5)

    def test_identity_is_by_name(self):
        assert Parameter("theta") == Parameter("theta")
        assert hash(Parameter("a") + 1.0) == hash(Parameter("a") + 1.0)
        assert Parameter("a") != Parameter("b")

    def test_full_binding_collapses_to_float(self):
        theta = Parameter("theta")
        bound = (2 * theta + 1.0).bind({theta: 0.5})
        assert isinstance(bound, float)
        assert bound == 2.0

    def test_partial_binding_keeps_expression(self):
        theta, phi = Parameter("theta"), Parameter("phi")
        partial = (theta + phi).bind({"theta": 1.0})
        assert isinstance(partial, ParameterExpression)
        assert {p.name for p in partial.parameters} == {"phi"}
        assert partial.bind({"phi": 2.0}) == pytest.approx(3.0)

    def test_products_of_expressions_are_rejected(self):
        theta = Parameter("theta")
        with pytest.raises(TypeError):
            theta * theta

    def test_float_of_free_expression_is_rejected(self):
        with pytest.raises(TypeError):
            float(Parameter("theta") + 1.0)

    def test_helpers(self):
        theta = Parameter("theta")
        assert is_symbolic(theta) is True
        assert is_symbolic(1.5) is False
        assert bind_value(theta * 2, {"theta": 0.5}) == pytest.approx(1.0)
        assert bind_value(3.0, {}) == 3.0
        assert evaluate_if_bound(ParameterExpression(constant=1.25)) == 1.25

    def test_invalid_names_are_rejected(self):
        with pytest.raises(ValueError):
            Parameter("")
        with pytest.raises(ValueError):
            Parameter(None)


class TestGateTemplates:
    def test_parameterized_gate_is_a_template(self):
        theta = Parameter("theta")
        gate = RZGate(theta)
        assert gate.free_parameters == frozenset({theta})
        bound = gate.bind_parameters({"theta": math.pi / 2})
        assert bound.free_parameters == frozenset()
        assert bound.params == (pytest.approx(math.pi / 2),)

    def test_controlled_gate_binding_recurses_into_base(self):
        theta = Parameter("theta")
        gate = CRZGate(theta / 2)
        bound = gate.bind_parameters({theta: math.pi})
        assert bound.free_parameters == frozenset()
        assert bound.base_gate.params == (pytest.approx(math.pi / 2),)

    def test_circuit_binding_round_trip(self):
        theta, phi = Parameter("theta"), Parameter("phi")
        circuit = QuantumCircuit(2, name="template")
        circuit.append(UGate(theta, phi, -phi), [0])
        circuit.cx(0, 1)
        circuit.append(RZGate(theta / 2), [1])
        assert {p.name for p in circuit.free_parameters} == {"theta", "phi"}
        bound = circuit.bind_parameters({"theta": 0.5, "phi": 0.25})
        assert bound.free_parameters == frozenset()
        direct = QuantumCircuit(2, name="direct")
        direct.append(UGate(0.5, 0.25, -0.25), [0])
        direct.cx(0, 1)
        direct.append(RZGate(0.25), [1])
        assert [i.operation for i in bound] == [i.operation for i in direct]


@st.composite
def linear_expressions(draw):
    """A random linear form over up to three named parameters."""
    names = draw(
        st.lists(
            st.sampled_from(["theta", "phi", "lam"]), min_size=0, max_size=3, unique=True
        )
    )
    finite = st.floats(
        min_value=-8.0, max_value=8.0, allow_nan=False, allow_infinity=False
    )
    terms = tuple((Parameter(name), draw(finite)) for name in names)
    return ParameterExpression(terms, draw(finite))


class TestSerializationRoundTrips:
    @settings(max_examples=40, deadline=None)
    @given(expr=linear_expressions())
    def test_pickle_round_trip_preserves_identity_and_binding(self, expr):
        clone = pickle.loads(pickle.dumps(expr))
        assert clone == expr
        assert hash(clone) == hash(expr)
        values = {p.name: 0.5 for p in expr.parameters}
        assert bind_value(clone, values) == pytest.approx(bind_value(expr, values))

    @settings(max_examples=40, deadline=None)
    @given(expr=linear_expressions())
    def test_qasm_round_trip_preserves_binding(self, expr):
        circuit = QuantumCircuit(1, name="sym")
        circuit.append(RZGate(expr), [0])
        restored = circuit_from_qasm(circuit_to_qasm(circuit))
        (instruction,) = [i for i in restored if i.is_gate]
        (param,) = instruction.operation.params
        values = {p.name: 0.25 for p in expr.parameters}
        assert bind_value(param, values) == pytest.approx(
            bind_value(expr, values), abs=1e-9
        )
        restored_names = (
            {p.name for p in param.parameters}
            if isinstance(param, ParameterExpression)
            else set()
        )
        assert restored_names == {p.name for p in expr.parameters}

    def test_gate_pickle_round_trip_keeps_template(self):
        theta = Parameter("theta")
        gate = pickle.loads(pickle.dumps(CRZGate(theta)))
        assert gate.free_parameters == frozenset({theta})
        assert gate.bind_parameters({"theta": 1.0}).base_gate.params == (
            pytest.approx(1.0),
        )

    def test_qasm_import_rejects_attribute_access(self):
        from repro.exceptions import QasmError

        with pytest.raises(QasmError):
            circuit_from_qasm(
                'OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[1];\n'
                "rz(pi.__class__) q[0];\n"
            )


class TestSymbolicGateGuards:
    def test_symbolic_gate_has_no_matrix(self):
        # A template gate has no numeric matrix until bound; the complex
        # arithmetic inside the matrix property rejects the free symbol.
        gate = RZGate(Parameter("theta"))
        with pytest.raises(TypeError):
            gate.matrix
