"""Pickle round-trips of circuits, gates, instructions and configurations.

The process executor of ``verify_batch`` ships circuits and configurations
into worker processes, so every one of them must survive
``pickle.loads(pickle.dumps(...))`` with an identical instruction stream and
identical checking behaviour.  DD packages, by contrast, are process-local
and must refuse to be pickled.
"""

import math
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    bernstein_vazirani_dynamic,
    ghz_ladder,
    qft_dynamic,
    teleportation_dynamic,
)
from repro.circuit import QuantumCircuit
from repro.circuit.gates import (
    Barrier,
    CCXGate,
    ControlledGate,
    CPhaseGate,
    CUGate,
    CXGate,
    HGate,
    MCPhaseGate,
    MCXGate,
    Measure,
    Reset,
    RXGate,
    RZGate,
    SwapGate,
    UGate,
    XGate,
    YGate,
)
from repro.circuit.operations import ClassicalCondition, Instruction
from repro.core import Configuration, check_equivalence
from repro.dd.package import DDPackage


def _roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


class TestOperationPickle:
    @pytest.mark.parametrize(
        "operation",
        [
            XGate(),
            YGate(),
            HGate(),
            RXGate(0.25),
            RZGate(-1.5),
            UGate(0.1, 0.2, 0.3),
            SwapGate(),
            CXGate(),
            CXGate(ctrl_state=0),
            CPhaseGate(math.pi / 8),
            CUGate(0.1, 0.2, 0.3, ctrl_state=0),
            CCXGate(ctrl_state=1),
            MCXGate(3, ctrl_state=5),
            MCPhaseGate(0.7, 2),
            ControlledGate(HGate(), 2, 1),
            Measure(),
            Reset(),
            Barrier(4),
        ],
    )
    def test_operation_roundtrip(self, operation):
        restored = _roundtrip(operation)
        assert type(restored) is type(operation)
        assert restored == operation
        assert restored.name == operation.name
        assert restored.num_qubits == operation.num_qubits

    def test_controlled_gate_keeps_control_structure(self):
        gate = _roundtrip(MCXGate(3, ctrl_state=5))
        assert gate.num_ctrl_qubits == 3
        assert gate.ctrl_state == 5
        assert isinstance(gate.base_gate, XGate)

    def test_instruction_roundtrip_revalidates(self):
        instruction = Instruction(
            XGate(), (1,), condition=ClassicalCondition((0, 2), 3)
        )
        restored = _roundtrip(instruction)
        assert restored == instruction
        assert restored.condition.bit_values == (1, 1)


class TestCircuitPickle:
    @pytest.mark.parametrize(
        "circuit",
        [
            ghz_ladder(4),
            teleportation_dynamic(0.3),
            bernstein_vazirani_dynamic("1011"),
            qft_dynamic(4),
        ],
        ids=["ghz", "teleportation", "bv", "qft"],
    )
    def test_named_circuits_roundtrip(self, circuit):
        restored = _roundtrip(circuit)
        assert restored.name == circuit.name
        assert restored.num_qubits == circuit.num_qubits
        assert restored.num_clbits == circuit.num_clbits
        assert restored.data == circuit.data

    def test_restored_circuit_is_internally_consistent(self):
        circuit = teleportation_dynamic()
        restored = _roundtrip(circuit)
        # The identity-keyed bit index maps must be rebuilt, not copied:
        # register/bit lookups and further building must work.
        for register in restored.qregs:
            for qubit in register:
                assert restored.qubit_index(qubit) == circuit.qubit_index(
                    circuit.qregs[restored.qregs.index(register)][qubit.index]
                )
        restored.h(0)
        assert len(restored) == len(circuit) + 1

    def test_conditioned_reset_roundtrips(self):
        circuit = QuantumCircuit(1, 1)
        circuit.h(0)
        circuit.measure(0, 0)
        circuit.reset(0, condition=(0, 1))
        restored = _roundtrip(circuit)
        assert restored.data == circuit.data
        assert restored.data[-1].condition == ClassicalCondition((0,), 1)

    def test_qasm_load_pickle_identical_stream_and_verdict(self):
        # The tentpole guarantee: QASM-load -> pickle -> unpickle yields the
        # identical instruction stream and the identical verdict.
        original = teleportation_dynamic(0.7)
        loaded = QuantumCircuit.from_qasm(original.to_qasm())
        restored = _roundtrip(loaded)
        assert restored.data == loaded.data
        direct = check_equivalence(original, loaded, seed=11)
        pickled = check_equivalence(original, restored, seed=11)
        assert pickled.criterion is direct.criterion


@st.composite
def small_circuits(draw):
    """Random static/dynamic circuits over a compact gate vocabulary."""
    num_qubits = draw(st.integers(min_value=1, max_value=4))
    circuit = QuantumCircuit(num_qubits, num_qubits, name="hypothesis")
    num_ops = draw(st.integers(min_value=1, max_value=12))
    for _ in range(num_ops):
        kind = draw(st.sampled_from(["h", "x", "rx", "cx", "p"]))
        qubit = draw(st.integers(min_value=0, max_value=num_qubits - 1))
        if kind == "h":
            circuit.h(qubit)
        elif kind == "x":
            circuit.x(qubit)
        elif kind == "rx":
            circuit.rx(draw(st.floats(0.0, math.pi, allow_nan=False)), qubit)
        elif kind == "p":
            circuit.p(draw(st.floats(0.0, math.pi, allow_nan=False)), qubit)
        elif kind == "cx" and num_qubits > 1:
            target = draw(
                st.integers(min_value=0, max_value=num_qubits - 1).filter(
                    lambda t: t != qubit
                )
            )
            circuit.cx(qubit, target)
    # Trailing read-out layer only, so Scheme 1 always applies.
    if draw(st.booleans()):
        circuit.measure_all()
    return circuit


class TestPicklePropertyBased:
    @settings(max_examples=40, deadline=None)
    @given(circuit=small_circuits())
    def test_qasm_roundtrip_then_pickle_preserves_stream(self, circuit):
        loaded = QuantumCircuit.from_qasm(circuit.to_qasm())
        restored = _roundtrip(loaded)
        assert restored.data == loaded.data
        assert restored.num_qubits == loaded.num_qubits
        assert restored.num_clbits == loaded.num_clbits
        # And again: pickling is idempotent.
        assert _roundtrip(restored).data == loaded.data

    @settings(max_examples=10, deadline=None)
    @given(circuit=small_circuits())
    def test_pickled_circuit_same_equivalence_verdict(self, circuit):
        restored = _roundtrip(circuit)
        direct = check_equivalence(circuit, circuit, seed=3)
        pickled = check_equivalence(restored, restored, seed=3)
        assert pickled.criterion is direct.criterion
        cross = check_equivalence(circuit, restored, seed=3)
        assert cross.equivalent


class TestProcessLocalTypes:
    def test_configuration_roundtrip(self):
        configuration = Configuration(
            seed=5,
            executor="process",
            batch_chunk_size=3,
            gate_cache_size=128,
            portfolio=("simulation", "alternating"),
        )
        assert _roundtrip(configuration) == configuration

    def test_dd_package_refuses_to_pickle(self):
        package = DDPackage(2)
        with pytest.raises(TypeError, match="process-local"):
            pickle.dumps(package)
