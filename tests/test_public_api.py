"""Tests of the top-level package surface (imports, __all__, doctest examples)."""

import doctest
import importlib

import pytest

import repro

MODULES_WITH_DOCTESTS = [
    "repro.utils.bits",
]

PUBLIC_MODULES = [
    "repro",
    "repro.circuit",
    "repro.core",
    "repro.dd",
    "repro.service",
    "repro.simulators",
    "repro.algorithms",
    "repro.compilation",
    "repro.utils",
]


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.1.0"

    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_all_entries_resolve(self, module_name):
        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__")
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.__all__ lists missing name {name!r}"

    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_all_has_no_duplicates(self, module_name):
        module = importlib.import_module(module_name)
        assert len(module.__all__) == len(set(module.__all__))

    def test_readme_quickstart_flow(self):
        """The flow shown in the README must work verbatim."""
        from repro import QuantumCircuit, check_behavioural_equivalence, check_equivalence

        dynamic = QuantumCircuit(1, 2)
        dynamic.h(0)
        dynamic.measure(0, 0)
        dynamic.reset(0)
        dynamic.x(0, condition=(0, 1))
        dynamic.measure(0, 1)

        static = QuantumCircuit(2, 2)
        static.h(0)
        static.cx(0, 1)
        static.measure(0, 0)
        static.measure(1, 1)

        assert check_equivalence(static, dynamic).equivalent
        assert check_behavioural_equivalence(static, dynamic).equivalent

    def test_package_docstring_example(self):
        from repro import QuantumCircuit, check_equivalence

        a = QuantumCircuit(2)
        a.h(0)
        a.cx(0, 1)
        b = QuantumCircuit(2)
        b.h(0)
        b.cx(0, 1)
        assert check_equivalence(a, b).equivalent


class TestDoctests:
    @pytest.mark.parametrize("module_name", MODULES_WITH_DOCTESTS)
    def test_doctests_pass(self, module_name):
        module = importlib.import_module(module_name)
        failures, _ = doctest.testmod(module, verbose=False)
        assert failures == 0
