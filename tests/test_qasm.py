"""Tests for OpenQASM 2 export and import."""

import math

import numpy as np
import pytest

from repro.algorithms import (
    bernstein_vazirani_dynamic,
    iterative_qpe,
    qft_dynamic,
    qpe_static,
)
from repro.circuit import (
    ClassicalRegister,
    QuantumCircuit,
    QuantumRegister,
    circuit_from_qasm,
    circuit_to_qasm,
    random_static_circuit,
)
from repro.exceptions import QasmError
from repro.simulators.unitary import circuit_unitary, matrices_equal_up_to_global_phase


def assert_same_functionality(first: QuantumCircuit, second: QuantumCircuit) -> None:
    assert first.num_qubits == second.num_qubits
    if not first.is_dynamic and not second.is_dynamic:
        assert matrices_equal_up_to_global_phase(
            circuit_unitary(first), circuit_unitary(second)
        )


class TestExport:
    def test_header_and_registers(self):
        circuit = QuantumCircuit(QuantumRegister(2, "qr"), ClassicalRegister(1, "cr"))
        qasm = circuit_to_qasm(circuit)
        assert qasm.startswith("OPENQASM 2.0;")
        assert "qreg qr[2];" in qasm
        assert "creg cr[1];" in qasm

    def test_gate_statements(self):
        circuit = QuantumCircuit(2, 2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.rz(math.pi / 2, 1)
        circuit.measure(1, 0)
        qasm = circuit_to_qasm(circuit)
        assert "h q[0];" in qasm
        assert "cx q[0], q[1];" in qasm
        assert "rz(pi/2) q[1];" in qasm
        assert "measure q[1] -> c[0];" in qasm

    def test_reset_and_barrier(self):
        circuit = QuantumCircuit(2, 1)
        circuit.reset(0)
        circuit.barrier()
        qasm = circuit_to_qasm(circuit)
        assert "reset q[0];" in qasm
        assert "barrier" in qasm

    def test_condition_on_full_register(self):
        circuit = QuantumCircuit(QuantumRegister(1, "q"), ClassicalRegister(1, "flag"))
        circuit.x(0, condition=(0, 1))
        qasm = circuit_to_qasm(circuit)
        assert "if (flag == 1) x q[0];" in qasm

    def test_condition_on_partial_register_raises(self):
        circuit = QuantumCircuit(QuantumRegister(1, "q"), ClassicalRegister(2, "c"))
        circuit.x(0, condition=(0, 1))
        with pytest.raises(QasmError):
            circuit_to_qasm(circuit)

    def test_mcx_without_representation_raises(self):
        circuit = QuantumCircuit(4)
        circuit.mcx([0, 1, 2], 3)
        with pytest.raises(QasmError):
            circuit_to_qasm(circuit)

    def test_pi_formatting(self):
        circuit = QuantumCircuit(1)
        circuit.p(3 * math.pi / 8, 0)
        assert "3*pi/8" in circuit_to_qasm(circuit)


class TestImport:
    def test_simple_program(self):
        qasm = """
        OPENQASM 2.0;
        include "qelib1.inc";
        qreg q[2];
        creg c[2];
        h q[0];
        cx q[0], q[1];
        measure q[0] -> c[0];
        measure q[1] -> c[1];
        """
        circuit = circuit_from_qasm(qasm)
        assert circuit.num_qubits == 2
        assert circuit.num_measurements == 2
        assert circuit.count_ops()["cx"] == 1

    def test_parameter_expressions(self):
        circuit = circuit_from_qasm(
            'OPENQASM 2.0; include "qelib1.inc"; qreg q[1]; rz(3*pi/4) q[0]; p(0.25) q[0];'
        )
        assert circuit.data[0].operation.params[0] == pytest.approx(3 * math.pi / 4)
        assert circuit.data[1].operation.params[0] == pytest.approx(0.25)

    def test_comments_are_ignored(self):
        circuit = circuit_from_qasm(
            "OPENQASM 2.0; qreg q[1]; // a comment\nx q[0]; // trailing"
        )
        assert circuit.count_ops()["x"] == 1

    def test_if_statement(self):
        qasm = (
            "OPENQASM 2.0; qreg q[1]; creg c0[1]; measure q[0] -> c0[0]; "
            "if (c0 == 1) x q[0];"
        )
        circuit = circuit_from_qasm(qasm)
        assert circuit.data[-1].condition is not None
        assert circuit.data[-1].condition.value == 1

    def test_unknown_gate_raises(self):
        with pytest.raises(Exception):
            circuit_from_qasm("OPENQASM 2.0; qreg q[1]; frobnicate q[0];")

    def test_unknown_register_raises(self):
        with pytest.raises(QasmError):
            circuit_from_qasm("OPENQASM 2.0; qreg q[1]; x r[0];")

    def test_out_of_range_index_raises(self):
        with pytest.raises(QasmError):
            circuit_from_qasm("OPENQASM 2.0; qreg q[1]; x q[3];")

    def test_malformed_parameter_raises(self):
        with pytest.raises(QasmError):
            circuit_from_qasm("OPENQASM 2.0; qreg q[1]; rz(import) q[0];")


class TestConditionedNonUnitaries:
    def test_conditioned_reset_import_keeps_condition(self):
        # Regression: the importer used to drop the ``if`` silently, turning a
        # conditional reset into an unconditional one.
        qasm = (
            'OPENQASM 2.0;\ninclude "qelib1.inc";\n'
            "qreg q[1];\ncreg c[1];\n"
            "measure q[0] -> c[0];\n"
            "if (c == 1) reset q[0];\n"
        )
        circuit = circuit_from_qasm(qasm)
        reset = circuit.data[-1]
        assert reset.is_reset
        assert reset.condition is not None
        assert reset.condition.clbits == (0,)
        assert reset.condition.value == 1

    def test_conditioned_reset_round_trips(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        circuit.reset(0, condition=(0, 1))
        exported = circuit_to_qasm(circuit)
        assert "if (c == 1) reset q[0];" in exported
        assert circuit_from_qasm(exported).data == circuit.data

    def test_conditioned_measure_rejected(self):
        qasm = (
            'OPENQASM 2.0;\ninclude "qelib1.inc";\n'
            "qreg q[1];\ncreg c[1];\n"
            "if (c == 1) measure q[0] -> c[0];\n"
        )
        with pytest.raises(QasmError, match="conditioned measurement"):
            circuit_from_qasm(qasm)


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_static_circuits(self, seed):
        circuit = random_static_circuit(3, 4, seed=seed, measure=True)
        restored = circuit_from_qasm(circuit_to_qasm(circuit))
        assert_same_functionality(circuit.remove_final_measurements(), restored.remove_final_measurements())

    def test_dynamic_iqpe_roundtrip(self):
        circuit = iterative_qpe(3)
        restored = circuit_from_qasm(circuit_to_qasm(circuit))
        assert restored.num_resets == circuit.num_resets
        assert restored.num_measurements == circuit.num_measurements
        assert restored.num_classically_controlled == circuit.num_classically_controlled

    def test_dynamic_bv_roundtrip_behaviour(self):
        from repro.core import extract_distribution

        circuit = bernstein_vazirani_dynamic("101")
        restored = circuit_from_qasm(circuit_to_qasm(circuit))
        original = extract_distribution(circuit).distribution
        recovered = extract_distribution(restored).distribution
        for key, value in original.items():
            assert recovered[key] == pytest.approx(value, abs=1e-9)

    def test_qft_dynamic_roundtrip_structure(self):
        circuit = qft_dynamic(3)
        restored = circuit_from_qasm(circuit_to_qasm(circuit))
        assert restored.count_ops() == circuit.count_ops()

    def test_qpe_static_roundtrip_unitary(self):
        circuit = qpe_static(3)
        restored = circuit_from_qasm(circuit_to_qasm(circuit))
        assert np.allclose(
            circuit_unitary(circuit.remove_final_measurements()),
            circuit_unitary(restored.remove_final_measurements()),
            atol=1e-9,
        )
