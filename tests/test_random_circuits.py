"""Tests for the random circuit generators."""

import pytest

from repro.circuit.random_circuits import random_dynamic_circuit, random_static_circuit
from repro.core import check_behavioural_equivalence, check_equivalence, to_unitary_circuit
from repro.exceptions import CircuitError


class TestRandomStatic:
    def test_reproducibility(self):
        first = random_static_circuit(4, 5, seed=42)
        second = random_static_circuit(4, 5, seed=42)
        assert first.data == second.data

    def test_different_seeds_differ(self):
        first = random_static_circuit(4, 5, seed=1)
        second = random_static_circuit(4, 5, seed=2)
        assert first.data != second.data

    def test_measure_flag(self):
        circuit = random_static_circuit(3, 2, seed=0, measure=True)
        assert circuit.num_measurements == 3
        assert not circuit.is_dynamic

    def test_without_measure_has_no_clbits(self):
        circuit = random_static_circuit(3, 2, seed=0)
        assert circuit.num_clbits == 0

    def test_depth_zero(self):
        circuit = random_static_circuit(3, 0, seed=0)
        assert circuit.size == 0

    def test_single_qubit_circuit(self):
        circuit = random_static_circuit(1, 5, seed=0)
        assert all(inst.operation.num_qubits == 1 for inst in circuit)

    def test_two_qubit_probability_zero(self):
        circuit = random_static_circuit(4, 5, seed=0, two_qubit_probability=0.0)
        assert all(inst.operation.num_qubits == 1 for inst in circuit)

    def test_invalid_arguments(self):
        with pytest.raises(CircuitError):
            random_static_circuit(0, 3)
        with pytest.raises(CircuitError):
            random_static_circuit(2, -1)


class TestRandomDynamic:
    def test_contains_dynamic_primitives(self):
        circuit = random_dynamic_circuit(3, 6, seed=5, num_measurements=3)
        assert circuit.is_dynamic
        assert circuit.num_measurements == 3
        assert circuit.num_resets >= 3

    def test_reproducibility(self):
        first = random_dynamic_circuit(3, 6, seed=7)
        second = random_dynamic_circuit(3, 6, seed=7)
        assert first.data == second.data

    def test_invalid_measurement_count(self):
        with pytest.raises(CircuitError):
            random_dynamic_circuit(2, 4, num_measurements=0)

    @pytest.mark.parametrize("seed", range(5))
    def test_transformable_and_self_consistent(self, seed):
        """Every generated dynamic circuit must be handled by both schemes."""
        circuit = random_dynamic_circuit(3, 5, seed=seed, num_measurements=2)
        reconstructed = to_unitary_circuit(circuit).circuit
        assert not reconstructed.is_dynamic
        assert check_equivalence(reconstructed, circuit).equivalent
        assert check_behavioural_equivalence(reconstructed, circuit).equivalent
