"""Tests for quantum and classical registers."""

import pytest

from repro.circuit.registers import ClassicalRegister, Clbit, QuantumRegister, Qubit
from repro.exceptions import CircuitError


class TestQuantumRegister:
    def test_size_and_name(self):
        register = QuantumRegister(3, "work")
        assert register.size == 3
        assert register.name == "work"
        assert len(register) == 3

    def test_indexing_returns_qubits(self):
        register = QuantumRegister(2, "q")
        assert isinstance(register[0], Qubit)
        assert register[0].index == 0
        assert register[1].register is register

    def test_slice(self):
        register = QuantumRegister(4, "q")
        assert register[1:3] == [register[1], register[2]]

    def test_iteration(self):
        register = QuantumRegister(3, "q")
        assert [qubit.index for qubit in register] == [0, 1, 2]

    def test_auto_name(self):
        first = QuantumRegister(1)
        second = QuantumRegister(1)
        assert first.name != second.name

    def test_negative_size_raises(self):
        with pytest.raises(CircuitError):
            QuantumRegister(-1, "q")

    def test_invalid_name_raises(self):
        with pytest.raises(CircuitError):
            QuantumRegister(1, "2bad")

    def test_registers_compare_by_identity(self):
        a = QuantumRegister(2, "same")
        b = QuantumRegister(2, "same")
        assert a == a
        assert a != b


class TestBits:
    def test_bit_equality_within_register(self):
        register = QuantumRegister(2, "q")
        assert register[0] == register[0]
        assert register[0] != register[1]

    def test_bits_of_different_registers_differ(self):
        a = QuantumRegister(1, "a")
        b = QuantumRegister(1, "b")
        assert a[0] != b[0]

    def test_qubit_and_clbit_are_distinct_types(self):
        q = QuantumRegister(1, "q")
        c = ClassicalRegister(1, "c")
        assert q[0] != c[0]
        assert isinstance(c[0], Clbit)

    def test_bits_are_hashable(self):
        register = QuantumRegister(3, "q")
        assert len({register[0], register[1], register[0]}) == 2

    def test_out_of_range_bit_raises(self):
        register = QuantumRegister(2, "q")
        with pytest.raises(IndexError):
            register[5]


class TestClassicalRegister:
    def test_basic(self):
        register = ClassicalRegister(4, "c")
        assert register.size == 4
        assert all(isinstance(bit, Clbit) for bit in register)

    def test_repr_contains_name(self):
        register = ClassicalRegister(2, "flags")
        assert "flags" in repr(register)
