"""Circuit breakers, retry policy, and their manager integration (PR 8)."""

import random
import time

import pytest

from repro.algorithms import ghz_ladder
from repro.core import Configuration, EquivalenceCheckingManager, EquivalenceCriterion
from repro.core.scheduler import Schedule, ScheduledChecker, deprioritize
from repro.resilience import (
    STATE_VALUES,
    BreakerBoard,
    CircuitBreaker,
    FaultPlan,
    FaultRule,
    RetryPolicy,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestCircuitBreaker:
    def test_starts_closed_and_allows(self):
        breaker = CircuitBreaker()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_trips_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_cooldown_admits_single_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=10.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(10.0)
        assert breaker.state == "half_open"
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # only one probe while unresolved

    def test_successful_probe_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=5.0, clock=clock)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_failed_probe_reopens_for_another_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=5.0, clock=clock)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        clock.advance(5.0)
        assert breaker.allow()

    def test_rejections_are_counted(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=100.0, clock=clock)
        breaker.record_failure()
        for _ in range(3):
            assert not breaker.allow()
        assert breaker.snapshot()["rejections"] == 3

    def test_snapshot_keys(self):
        snapshot = CircuitBreaker().snapshot()
        for key in (
            "state",
            "consecutive_failures",
            "failure_threshold",
            "cooldown",
            "failures",
            "successes",
            "opens",
            "closes",
            "probes",
            "rejections",
        ):
            assert key in snapshot
        assert snapshot["state"] in STATE_VALUES

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=0.0)


class TestBreakerBoard:
    def test_breakers_created_on_demand(self):
        board = BreakerBoard(failure_threshold=2)
        assert board.snapshot() == {}
        board.allow("simulation")
        assert "simulation" in board.snapshot()

    def test_record_and_quarantine(self):
        board = BreakerBoard(failure_threshold=2, cooldown=100.0, clock=FakeClock())
        board.record("simulation", False)
        assert board.quarantined() == ()
        board.record("simulation", False)
        assert board.quarantined() == ("simulation",)
        assert not board.allow("simulation")
        assert board.allow("alternating")

    def test_quarantine_clears_after_successful_probe(self):
        clock = FakeClock()
        board = BreakerBoard(failure_threshold=1, cooldown=5.0, clock=clock)
        board.record("simulation", False)
        assert board.quarantined() == ("simulation",)
        clock.advance(5.0)
        assert board.allow("simulation")
        board.record("simulation", True)
        assert board.quarantined() == ()


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=-1)
        with pytest.raises(ValueError):
            RetryPolicy(base=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(base=1.0, cap=0.5)

    def test_delays_are_deterministic_with_seeded_rng(self):
        a = RetryPolicy(base=0.1, cap=5.0, rng=random.Random(7))
        b = RetryPolicy(base=0.1, cap=5.0, rng=random.Random(7))
        assert [a.next_delay() for _ in range(5)] == [b.next_delay() for _ in range(5)]

    def test_delays_respect_base_and_cap(self):
        policy = RetryPolicy(base=0.1, cap=1.0, rng=random.Random(0))
        for _ in range(50):
            delay = policy.next_delay()
            assert 0.1 <= delay <= 1.0

    def test_retry_after_hint_takes_precedence_and_is_capped(self):
        policy = RetryPolicy(base=0.1, cap=2.0, rng=random.Random(0))
        assert policy.next_delay(retry_after=0.7) == 0.7
        assert policy.next_delay(retry_after=99.0) == 2.0

    def test_hint_advances_the_decorrelated_sequence(self):
        policy = RetryPolicy(base=0.001, cap=10.0, rng=random.Random(0))
        policy.next_delay(retry_after=3.0)
        # Next computed delay draws from [base, previous*3] with previous>=3.
        seen = max(policy.next_delay() for _ in range(20))
        assert seen > 0.5

    def test_backoff_sleeps_and_reset_restarts(self):
        slept = []
        policy = RetryPolicy(
            base=0.5, cap=0.5, rng=random.Random(0), sleep=slept.append
        )
        assert policy.backoff() == 0.5
        assert slept == [0.5]
        policy.reset()
        assert policy._previous == policy.base


class TestDeprioritize:
    def _schedule(self):
        return Schedule(
            checkers=(
                ScheduledChecker("simulation"),
                ScheduledChecker("alternating"),
                ScheduledChecker("construction"),
            ),
            scheduler="static",
            rationale="fixed order",
        )

    def test_moves_named_checkers_last_stably(self):
        schedule = deprioritize(self._schedule(), ["simulation"])
        assert schedule.checker_names == ("alternating", "construction", "simulation")
        assert "quarantined" in schedule.rationale

    def test_noop_when_no_name_matches(self):
        schedule = self._schedule()
        assert deprioritize(schedule, ["magic"]) is schedule


class TestManagerQuarantine:
    def _manager(self, **overrides):
        configuration = Configuration(
            portfolio=("simulation", "alternating"),
            max_workers=1,
            seed=11,
            verdict_cache=False,
            **overrides,
        )
        return EquivalenceCheckingManager(configuration)

    def test_breaker_board_disabled_when_threshold_none(self):
        assert self._manager(breaker_threshold=None).breakers is None

    def test_failing_checker_gets_quarantined(self):
        manager = self._manager(
            breaker_threshold=2,
            breaker_cooldown=1000.0,
            fault_plan=FaultPlan(
                rules=(FaultRule(site="checker", target="simulation", times=0),)
            ),
        )
        results = [manager.run(ghz_ladder(3), ghz_ladder(3)) for _ in range(3)]
        # Every run still decides (the alternating checker is healthy).
        for result in results:
            assert result.criterion is EquivalenceCriterion.EQUIVALENT
            assert result.decided_by == "alternating"
        # Third run: simulation is deprioritized last, so the healthy
        # alternating checker decides first and simulation is skipped —
        # the portfolio degrades gracefully instead of paying for it.
        statuses = {a.method: a.status for a in results[-1].attempts}
        assert statuses["simulation"] == "skipped"
        assert results[-1].schedule[-1] == "simulation"
        board = manager.breakers.snapshot()
        assert board["simulation"]["state"] == "open"
        assert board["simulation"]["opens"] >= 1
        assert manager.breakers.quarantined() == ("simulation",)

    def test_quarantined_attempt_records_reason(self):
        # Single-checker portfolio: with its only checker quarantined the
        # manager records a "quarantined" attempt instead of running it.
        configuration = Configuration(
            portfolio=("simulation",),
            max_workers=1,
            seed=11,
            verdict_cache=False,
            breaker_threshold=1,
            breaker_cooldown=1000.0,
            fault_plan=FaultPlan(
                rules=(FaultRule(site="checker", target="simulation", times=1),)
            ),
        )
        manager = EquivalenceCheckingManager(configuration)
        manager.run(ghz_ladder(3), ghz_ladder(3))
        result = manager.run(ghz_ladder(3), ghz_ladder(3))
        attempt = next(a for a in result.attempts if a.method == "simulation")
        assert attempt.status == "quarantined"
        assert "circuit breaker" in attempt.error
        assert result.criterion is EquivalenceCriterion.NO_INFORMATION

    def test_breaker_recovers_via_half_open_probe(self):
        manager = self._manager(
            breaker_threshold=1,
            breaker_cooldown=0.05,
            fault_plan=FaultPlan(
                rules=(FaultRule(site="checker", target="simulation", times=1),)
            ),
        )
        manager.run(ghz_ladder(3), ghz_ladder(3))
        assert manager.breakers.quarantined() == ("simulation",)
        time.sleep(0.06)
        # The cooldown expired: the probe runs (fault exhausted), succeeds,
        # and the breaker closes again.
        result = manager.run(ghz_ladder(3), ghz_ladder(3))
        statuses = {a.method: a.status for a in result.attempts}
        assert statuses.get("simulation") == "completed"
        assert manager.breakers.breaker("simulation").state == "closed"
