"""Graceful drain and degraded health reporting, e2e on both backends."""

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.algorithms import ghz_ladder
from repro.core import Configuration
from repro.exceptions import ServiceError
from repro.service import (
    AsyncVerificationServer,
    VerificationClient,
    VerificationServer,
)

SEED = 17

BACKENDS = {
    "thread": VerificationServer,
    "async": AsyncVerificationServer,
}


def _start(backend, **config_overrides):
    options = dict(seed=SEED, max_workers=2)
    options.update(config_overrides)
    server = BACKENDS[backend](port=0, configuration=Configuration(**options))
    server.start_background()
    return server


def _hold_manager(service):
    """Make manager runs block on the returned event (to pin jobs in flight)."""
    release = threading.Event()
    original = service.manager.run

    def held(first, second, **kwargs):
        assert release.wait(30.0), "test forgot to release the worker"
        return original(first, second, **kwargs)

    service.manager.run = held
    return release


@pytest.mark.parametrize("backend", ["thread", "async"])
class TestHealthz:
    def test_healthy_by_default(self, backend):
        server = _start(backend)
        try:
            payload = VerificationClient(server.url, timeout=10.0).health()
            assert payload["ok"] is True
            assert payload["status"] == "healthy"
            assert payload["reasons"] == []
            assert payload["draining"] is False
        finally:
            server.close()

    def test_open_breaker_reports_degraded_but_still_200(self, backend):
        server = _start(backend, breaker_threshold=2, breaker_cooldown=1000.0)
        try:
            breakers = server.service.manager.breakers
            breakers.record("simulation", False)
            breakers.record("simulation", False)
            payload = VerificationClient(server.url, timeout=10.0).health()
            assert payload["ok"] is True  # still HTTP 200: alive and serving
            assert payload["status"] == "degraded"
            assert any("simulation" in reason for reason in payload["reasons"])
        finally:
            server.close()

    def test_journal_degradation_is_reported(self, backend, tmp_path):
        server = _start(backend, cache_path=tmp_path / "verdicts.journal")
        try:
            cache = server.service.manager.verdict_cache
            cache._journal_errors += 1  # simulate a write error having happened
            cache.path = None
            cache._journal = None
            payload = VerificationClient(server.url, timeout=10.0).health()
            assert payload["status"] == "degraded"
            assert any("journal" in reason for reason in payload["reasons"])
        finally:
            server.close()

    def test_draining_is_reported(self, backend):
        server = _start(backend)
        try:
            server.service.begin_drain()
            payload = VerificationClient(server.url, timeout=10.0).health()
            assert payload["status"] == "degraded"
            assert payload["draining"] is True
            assert any("draining" in reason for reason in payload["reasons"])
        finally:
            server.close()


@pytest.mark.parametrize("backend", ["thread", "async"])
class TestDrain:
    def test_drain_rejects_new_submissions_with_503(self, backend):
        server = _start(backend)
        try:
            client = VerificationClient(server.url, timeout=10.0)
            server.service.begin_drain()
            with pytest.raises(ServiceError) as excinfo:
                client.submit(ghz_ladder(2), ghz_ladder(2))
            assert excinfo.value.status == 503
            assert excinfo.value.retry_after is not None
        finally:
            server.close()

    def test_drain_finishes_in_flight_jobs(self, backend):
        server = _start(backend)
        try:
            client = VerificationClient(server.url, timeout=10.0)
            release = _hold_manager(server.service)
            submission = client.submit(ghz_ladder(3), ghz_ladder(3))
            server.service.begin_drain()

            drained = {}

            def drain():
                drained["ok"] = server.drain(timeout=30.0)

            thread = threading.Thread(target=drain)
            thread.start()
            time.sleep(0.05)
            assert thread.is_alive()  # still waiting on the held job
            release.set()
            thread.join(timeout=30.0)
            assert drained["ok"] is True
            # The in-flight job settled with its verdict intact.
            payload = client.result(submission["job_id"])
            assert payload["criterion"] == "equivalent"
        finally:
            server.close()

    def test_drain_times_out_on_stuck_jobs(self, backend):
        server = _start(backend)
        try:
            client = VerificationClient(server.url, timeout=10.0)
            release = _hold_manager(server.service)
            client.submit(ghz_ladder(3), ghz_ladder(3))
            assert server.drain(timeout=0.2) is False
            release.set()
        finally:
            server.close()

    def test_close_with_drain_timeout_flushes_journal(self, backend, tmp_path):
        path = tmp_path / "verdicts.journal"
        server = _start(backend, cache_path=path)
        client = VerificationClient(server.url, timeout=10.0)
        payload = client.verify(ghz_ladder(3), ghz_ladder(3), timeout=30.0)
        assert payload["criterion"] == "equivalent"
        server.close(drain_timeout=10.0)
        # The journal survived shutdown and replays into a fresh cache.
        from repro.service.cache import VerdictCache

        cache = VerdictCache(path=path)
        assert cache.statistics()["persistent_entries"] >= 1
        assert cache.statistics()["journal"]["dropped"] == 0


class TestSigtermCli:
    """The `repro-qcec serve` process drains and exits cleanly on SIGTERM."""

    @pytest.mark.parametrize("backend", ["thread", "async"])
    def test_sigterm_drains_and_exits_zero(self, backend, tmp_path):
        src = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ, PYTHONPATH=str(src), PYTHONUNBUFFERED="1")
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--port",
                "0",
                "--backend",
                backend,
                "--drain-timeout",
                "5",
                "--cache-path",
                str(tmp_path / "verdicts.journal"),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            banner = process.stdout.readline()
            assert "serving on" in banner
            url = next(
                token for token in banner.split() if token.startswith("http://")
            )
            client = VerificationClient(url, timeout=10.0)
            payload = client.verify(ghz_ladder(3), ghz_ladder(3), timeout=30.0)
            assert payload["criterion"] == "equivalent"
            process.send_signal(signal.SIGTERM)
            stdout, stderr = process.communicate(timeout=30.0)
            assert process.returncode == 0
            assert "draining" in stderr
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
