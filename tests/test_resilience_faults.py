"""The chaos suite: deterministic fault injection across the whole stack.

The acceptance criterion of PR 8: under the injected-fault matrix, every
batch returns verdicts *entry-for-entry identical* to a fault-free run — no
hangs, no lost pairs — on the thread AND the process executor.
"""

import pytest

from repro.algorithms import ghz_ladder, ghz_with_bug
from repro.core import Configuration, EquivalenceCheckingManager
from repro.exceptions import ServiceError
from repro.resilience import FaultInjected, FaultInjector, FaultPlan, FaultRule
from repro.service import VerificationClient, VerificationServer, VerificationService

SEED = 31


def _pairs():
    """Six small pairs, one genuinely non-equivalent: enough to shard into
    several process work units while keeping the suite fast."""
    pairs = [(ghz_ladder(2 + i % 3), ghz_ladder(2 + i % 3)) for i in range(5)]
    pairs.insert(3, (ghz_ladder(3), ghz_with_bug(3)))
    return pairs


def _configuration(executor, fault_plan=None, **overrides):
    options = dict(
        portfolio=("simulation", "alternating"),
        max_workers=2,
        seed=SEED,
        executor=executor,
        batch_chunk_size=3,
        verdict_cache=False,
        fault_plan=fault_plan,
    )
    options.update(overrides)
    return Configuration(**options)


def _criteria(batch):
    return [
        entry.result.criterion.value if entry.result is not None else entry.error
        for entry in batch.entries
    ]


@pytest.fixture(scope="module")
def baselines():
    """Fault-free criteria per executor, computed once for the module."""
    return {
        executor: _criteria(
            EquivalenceCheckingManager(_configuration(executor)).verify_batch(_pairs())
        )
        for executor in ("thread", "process")
    }


class TestFaultInjector:
    def test_inactive_without_plan(self):
        injector = FaultInjector(None)
        assert not injector.active
        injector.fire("checker", "simulation")  # no-op
        assert injector.injections == 0

    def test_times_budget_is_respected(self):
        plan = FaultPlan(rules=(FaultRule(site="checker", times=2),))
        injector = FaultInjector(plan)
        for _ in range(2):
            with pytest.raises(FaultInjected):
                injector.fire("checker", "simulation")
        injector.fire("checker", "simulation")  # budget exhausted
        assert injector.injections == 2

    def test_target_narrowing(self):
        plan = FaultPlan(rules=(FaultRule(site="checker", target="simulation"),))
        injector = FaultInjector(plan)
        injector.fire("checker", "alternating")  # different target: no-op
        with pytest.raises(FaultInjected):
            injector.fire("checker", "simulation")

    def test_attempt_keyed_counting_is_deterministic(self):
        # attempt < times fires, attempt >= times does not — independent of
        # injector-local state, so a respawned worker behaves identically.
        plan = FaultPlan(rules=(FaultRule(site="worker", target="3", times=2),))
        for _ in range(2):  # fresh injectors, same decisions
            injector = FaultInjector(plan)
            with pytest.raises(FaultInjected):
                injector.fire("worker", "3", attempt=0)
            with pytest.raises(FaultInjected):
                injector.fire("worker", "3", attempt=1)
            injector.fire("worker", "3", attempt=2)

    def test_probability_is_seeded_and_reproducible(self):
        plan = FaultPlan(
            rules=(FaultRule(site="checker", times=0, probability=0.5),), seed=9
        )

        def outcomes():
            injector = FaultInjector(plan)
            fired = []
            for _ in range(20):
                try:
                    injector.fire("checker", "x")
                    fired.append(False)
                except FaultInjected:
                    fired.append(True)
            return fired

        first, second = outcomes(), outcomes()
        assert first == second
        assert any(first) and not all(first)

    def test_reject_action_raises_service_error(self):
        plan = FaultPlan(
            rules=(
                FaultRule(site="submit", action="reject", status=429, retry_after=0.5),
            )
        )
        with pytest.raises(ServiceError) as excinfo:
            FaultInjector(plan).fire("submit")
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after == 0.5

    def test_sleep_action_uses_injected_sleep(self):
        slept = []
        plan = FaultPlan(rules=(FaultRule(site="checker", action="sleep", delay=2.0),))
        FaultInjector(plan, sleep=slept.append).fire("checker", "x")
        assert slept == [2.0]

    def test_journal_site_raises_oserror(self):
        plan = FaultPlan(rules=(FaultRule(site="journal"),))
        injector = FaultInjector(plan)
        with pytest.raises(OSError):
            injector.hook("journal", "verdict_cache")()

    def test_rule_validation(self):
        with pytest.raises(ValueError):
            FaultRule(site="bogus")
        with pytest.raises(ValueError):
            FaultRule(site="checker", action="bogus")
        with pytest.raises(ValueError):
            FaultRule(site="checker", probability=1.5)
        with pytest.raises(TypeError):
            FaultPlan(rules=("not a rule",))

    def test_plan_travels_through_configuration_pickle(self):
        import pickle

        plan = FaultPlan(rules=(FaultRule(site="worker", action="exit"),))
        configuration = _configuration("process", fault_plan=plan)
        clone = pickle.loads(pickle.dumps(configuration))
        assert clone.fault_plan == plan


class TestChaosMatrix:
    """Injected faults must never change verdicts — only how they were won."""

    def _assert_matches_baseline(self, executor, fault_plan, baselines, **overrides):
        configuration = _configuration(executor, fault_plan=fault_plan, **overrides)
        manager = EquivalenceCheckingManager(configuration)
        batch = manager.verify_batch(_pairs())
        assert _criteria(batch) == baselines[executor]
        return manager

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_transient_checker_crashes(self, executor, baselines):
        plan = FaultPlan(
            rules=(FaultRule(site="checker", target="simulation", times=2),)
        )
        self._assert_matches_baseline(executor, plan, baselines)

    def test_slow_checker_still_agrees(self, baselines):
        plan = FaultPlan(
            rules=(
                FaultRule(
                    site="checker", target="simulation", action="sleep",
                    delay=0.02, times=3,
                ),
            )
        )
        self._assert_matches_baseline("thread", plan, baselines)

    def test_journal_write_errors_degrade_without_losing_verdicts(
        self, baselines, tmp_path
    ):
        plan = FaultPlan(rules=(FaultRule(site="journal", times=1),))
        configuration = _configuration(
            "thread",
            fault_plan=plan,
            verdict_cache=True,
            cache_path=tmp_path / "verdicts.journal",
        )
        manager = EquivalenceCheckingManager(configuration)
        batch = manager.verify_batch(_pairs())
        assert _criteria(batch) == baselines["thread"]
        stats = manager.verdict_cache.statistics()
        assert stats["journal_errors"] == 1
        assert stats["path"] is None  # degraded to memory-only

    def test_worker_death_recovers_lost_units(self, baselines):
        # Kill the worker process handling pair #2 once: the pool breaks,
        # gets rebuilt, and only the lost work is re-dispatched.
        plan = FaultPlan(
            rules=(FaultRule(site="worker", target="2", action="exit", times=1),)
        )
        manager = self._assert_matches_baseline("process", plan, baselines)
        stats = manager.batch_statistics()
        assert stats["pool_rebuilds"] >= 1
        assert stats["abandoned_units"] == 0

    def test_poisoned_pair_is_bisected_and_isolated(self, baselines):
        # Pair #2 kills its worker on *every* attempt: after bisection it
        # must be the only entry without a verdict.
        plan = FaultPlan(
            rules=(FaultRule(site="worker", target="2", action="exit", times=0),)
        )
        configuration = _configuration("process", fault_plan=plan, batch_retries=2)
        manager = EquivalenceCheckingManager(configuration)
        batch = manager.verify_batch(_pairs())
        for index, entry in enumerate(batch.entries):
            if index == 2:
                assert entry.result is None
                assert entry.error is not None
            else:
                assert _criteria(batch)[index] == baselines["process"][index]
        stats = manager.batch_statistics()
        assert stats["abandoned_units"] == 1
        assert stats["unit_bisections"] >= 1

    def test_fail_fast_with_zero_batch_retries(self):
        plan = FaultPlan(
            rules=(FaultRule(site="worker", target="2", action="exit", times=0),)
        )
        configuration = _configuration("process", fault_plan=plan, batch_retries=0)
        batch = EquivalenceCheckingManager(configuration).verify_batch(_pairs())
        failed = [entry for entry in batch.entries if entry.result is None]
        assert failed  # no retry budget: the broken unit's pairs fail
        assert len(batch.entries) == len(_pairs())


class TestServiceRetries:
    def test_client_retries_through_a_rejection_storm(self):
        # The first two submissions are rejected with 503 + Retry-After;
        # a retrying client lands the job anyway, deterministically.
        plan = FaultPlan(
            rules=(
                FaultRule(
                    site="submit", action="reject", status=503,
                    retry_after=0.01, times=2,
                ),
            )
        )
        server = VerificationServer(
            port=0,
            configuration=Configuration(seed=SEED, max_workers=2, fault_plan=plan),
        )
        server.start_background()
        try:
            slept = []
            client = VerificationClient(
                server.url, timeout=10.0, retries=3, retry_sleep=slept.append
            )
            payload = client.verify(ghz_ladder(3), ghz_ladder(3), timeout=30.0)
            assert payload["criterion"] == "equivalent"
            assert client.retries_performed == 2
            # The wire header is ceil'd to whole seconds; the recorded
            # (fake) sleeps prove the hint took precedence over jitter.
            assert slept == [1.0, 1.0]
        finally:
            server.close()

    def test_client_without_retries_sees_the_rejection(self):
        plan = FaultPlan(
            rules=(FaultRule(site="submit", action="reject", status=503, times=1),)
        )
        server = VerificationServer(
            port=0,
            configuration=Configuration(seed=SEED, max_workers=2, fault_plan=plan),
        )
        server.start_background()
        try:
            client = VerificationClient(server.url, timeout=10.0)
            with pytest.raises(ServiceError) as excinfo:
                client.submit(ghz_ladder(2), ghz_ladder(2))
            assert excinfo.value.status == 503
        finally:
            server.close()

    def test_client_gives_up_after_retry_budget(self):
        plan = FaultPlan(
            rules=(FaultRule(site="submit", action="reject", status=429, times=0),)
        )
        server = VerificationServer(
            port=0,
            configuration=Configuration(seed=SEED, max_workers=2, fault_plan=plan),
        )
        server.start_background()
        try:
            client = VerificationClient(
                server.url, timeout=10.0, retries=2, retry_sleep=lambda _: None
            )
            with pytest.raises(ServiceError) as excinfo:
                client.submit(ghz_ladder(2), ghz_ladder(2))
            assert excinfo.value.status == 429
            assert client.retries_performed == 2
        finally:
            server.close()

    def test_per_job_retry_budget_recovers_a_flaky_manager(self):
        service = VerificationService(
            Configuration(seed=SEED, max_workers=2), job_retries=2
        )
        try:
            original = service.manager.run
            failures = {"left": 1}

            def flaky(first, second, **kwargs):
                if failures["left"] > 0:
                    failures["left"] -= 1
                    raise RuntimeError("transient manager crash")
                return original(first, second, **kwargs)

            service.manager.run = flaky
            job_id = service.submit(ghz_ladder(3), ghz_ladder(3))["job_id"]
            assert service.wait_settled(job_id, timeout=30.0)
            payload = service.job_result(job_id)
            assert payload["criterion"] == "equivalent"
            assert service.job_retries_performed == 1
        finally:
            service.shutdown(wait=True)

    def test_resilience_counters_reach_the_metrics_endpoint(self):
        plan = FaultPlan(
            rules=(FaultRule(site="checker", target="simulation", times=1),)
        )
        server = VerificationServer(
            port=0,
            configuration=Configuration(
                seed=SEED, max_workers=2, fault_plan=plan, breaker_threshold=2
            ),
        )
        server.start_background()
        try:
            client = VerificationClient(server.url, timeout=10.0)
            client.verify(ghz_ladder(3), ghz_ladder(3), timeout=30.0)
            text = client.metrics()
            assert 'repro_breaker_state{checker="simulation"}' in text
            assert "repro_journal_events" in text
            assert "repro_batch_resilience_events" in text
            assert "repro_service_draining 0" in text
            stats = client.stats()
            assert "resilience" in stats
            assert stats["resilience"]["breakers"]["simulation"]["failures"] >= 1
        finally:
            server.close()
