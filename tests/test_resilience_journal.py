"""Crash-safe journal: framing, recovery, compaction, and hypothesis properties."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resilience.journal import CrashSafeJournal


def _records(n):
    return [{"fingerprint": f"fp{i}", "value": i} for i in range(n)]


def _write(path, records):
    journal = CrashSafeJournal(path, key=lambda r: r.get("fingerprint"))
    for record in records:
        journal.append(record)
    return journal


class TestRoundTrip:
    def test_append_then_replay(self, tmp_path):
        path = tmp_path / "journal.log"
        _write(path, _records(5))
        replayed = CrashSafeJournal(path).replay()
        assert replayed == _records(5)

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "journal.log"
        CrashSafeJournal(path)
        assert path.exists()

    def test_latest_view_keeps_last_record_per_key(self, tmp_path):
        path = tmp_path / "journal.log"
        journal = CrashSafeJournal(path, key=lambda r: r["fingerprint"])
        journal.append({"fingerprint": "a", "value": 1})
        journal.append({"fingerprint": "b", "value": 2})
        journal.append({"fingerprint": "a", "value": 3})
        assert journal.latest == {
            "a": {"fingerprint": "a", "value": 3},
            "b": {"fingerprint": "b", "value": 2},
        }

    def test_statistics_counters(self, tmp_path):
        path = tmp_path / "journal.log"
        journal = _write(path, _records(3))
        stats = journal.statistics()
        assert stats["appends"] == 3
        assert stats["append_errors"] == 0
        assert stats["size_bytes"] > 0


class TestRecovery:
    def test_torn_tail_is_truncated(self, tmp_path):
        path = tmp_path / "journal.log"
        _write(path, _records(3))
        good_size = path.stat().st_size
        with path.open("ab") as handle:
            handle.write(b"R 999 deadbeef {\"torn")  # no newline: torn append
        journal = CrashSafeJournal(path)
        assert journal.replay() == _records(3)
        stats = journal.statistics()
        assert stats["recovered"] == 3
        assert stats["dropped"] == 1
        assert stats["truncated_bytes"] > 0
        assert path.stat().st_size == good_size

    def test_corrupt_middle_record_is_dropped_not_truncated(self, tmp_path):
        path = tmp_path / "journal.log"
        _write(path, _records(3))
        data = path.read_bytes()
        lines = data.split(b"\n")
        lines[1] = b"R 12 00000000 garbagegarba"  # bad CRC, framed length ok
        path.write_bytes(b"\n".join(lines))
        journal = CrashSafeJournal(path)
        replayed = journal.replay()
        assert replayed == [_records(3)[0], _records(3)[2]]
        stats = journal.statistics()
        assert stats["dropped"] == 1
        # The good record after the corruption must survive on disk.
        assert _records(3)[2] in CrashSafeJournal(path).replay()

    def test_truncation_can_be_disabled(self, tmp_path):
        path = tmp_path / "journal.log"
        _write(path, _records(2))
        with path.open("ab") as handle:
            handle.write(b"torn-without-newline")
        size = path.stat().st_size
        journal = CrashSafeJournal(path, truncate_torn_tail=False)
        assert journal.replay() == _records(2)
        assert path.stat().st_size == size

    def test_legacy_bare_json_lines_replay(self, tmp_path):
        path = tmp_path / "journal.log"
        with path.open("wb") as handle:
            for record in _records(3):
                handle.write(json.dumps(record).encode() + b"\n")
        journal = CrashSafeJournal(path)
        assert journal.replay() == _records(3)
        assert journal.statistics()["legacy"] == 3

    def test_mixed_legacy_and_framed(self, tmp_path):
        path = tmp_path / "journal.log"
        with path.open("wb") as handle:
            handle.write(json.dumps({"fingerprint": "old"}).encode() + b"\n")
        journal = CrashSafeJournal(path, key=lambda r: r.get("fingerprint"))
        journal.replay()
        journal.append({"fingerprint": "new"})
        replayed = CrashSafeJournal(path).replay()
        assert replayed == [{"fingerprint": "old"}, {"fingerprint": "new"}]

    def test_blank_lines_are_harmless(self, tmp_path):
        path = tmp_path / "journal.log"
        _write(path, _records(1))
        with path.open("ab") as handle:
            handle.write(b"\n\n")
        journal = CrashSafeJournal(path)
        assert journal.replay() == _records(1)
        assert journal.statistics()["dropped"] == 0

    def test_replay_never_raises_on_binary_garbage(self, tmp_path):
        path = tmp_path / "journal.log"
        path.write_bytes(bytes(range(256)) * 4)
        journal = CrashSafeJournal(path)
        assert journal.replay() == []


class TestCompaction:
    def test_size_triggered_compaction_keeps_last_per_key(self, tmp_path):
        path = tmp_path / "journal.log"
        journal = CrashSafeJournal(
            path, key=lambda r: r["fingerprint"], max_bytes=256
        )
        for i in range(50):
            journal.append({"fingerprint": f"fp{i % 3}", "value": i})
        stats = journal.statistics()
        assert stats["compactions"] >= 1
        assert stats["size_bytes"] <= 512  # 3 live keys, not 50 records
        replayed = CrashSafeJournal(path, key=lambda r: r["fingerprint"]).replay()
        values = {r["fingerprint"]: r["value"] for r in replayed}
        assert values == {"fp0": 48, "fp1": 49, "fp2": 47}

    def test_compaction_requires_key(self, tmp_path):
        journal = CrashSafeJournal(tmp_path / "journal.log")
        with pytest.raises(RuntimeError):
            journal.compact()


class TestWriteFailures:
    def test_write_hook_failure_counts_and_raises(self, tmp_path):
        calls = []

        def hook():
            calls.append(1)
            raise OSError("injected")

        journal = CrashSafeJournal(tmp_path / "journal.log", write_hook=hook)
        with pytest.raises(OSError):
            journal.append({"fingerprint": "x"})
        assert calls == [1]

    def test_flush_is_best_effort(self, tmp_path):
        journal = _write(tmp_path / "journal.log", _records(1))
        journal.flush()  # must not raise


# ----------------------------------------------------------------------
# hypothesis: recovery at arbitrary byte offsets (satellite 4)
# ----------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    num_records=st.integers(min_value=1, max_value=8),
    cut=st.floats(min_value=0.0, max_value=1.0),
)
def test_truncation_at_any_byte_offset_recovers_the_intact_prefix(
    tmp_path_factory, num_records, cut
):
    """Crash mid-append == the file ends at an arbitrary byte offset.

    Every record wholly before the cut must be recovered; nothing may raise;
    recovered + dropped must account for every line-shaped region.
    """
    path = tmp_path_factory.mktemp("journal") / "journal.log"
    records = _records(num_records)
    _write(path, records)
    data = path.read_bytes()
    offset = int(round(cut * len(data)))
    path.write_bytes(data[:offset])

    # Which records are wholly intact before the cut?
    boundaries, pos = [], 0
    while True:
        newline = data.find(b"\n", pos)
        if newline == -1:
            break
        boundaries.append(newline + 1)
        pos = newline + 1
    intact = sum(1 for end in boundaries if end <= offset)

    journal = CrashSafeJournal(path, key=lambda r: r.get("fingerprint"))
    replayed = journal.replay()
    assert replayed == records[:intact]
    stats = journal.statistics()
    assert stats["recovered"] == intact
    # A torn tail (if any) is exactly one dropped partial region.
    tail_start = boundaries[intact - 1] if intact else 0
    assert stats["dropped"] == (1 if offset > tail_start else 0)
    # After truncation the file replays clean.
    again = CrashSafeJournal(path)
    assert again.replay() == records[:intact]
    assert again.statistics()["dropped"] == 0


@settings(max_examples=40, deadline=None)
@given(
    num_records=st.integers(min_value=2, max_value=8),
    position=st.floats(min_value=0.0, max_value=1.0),
    flip=st.integers(min_value=1, max_value=255),
)
def test_single_flipped_byte_never_crashes_and_loses_at_most_two_records(
    tmp_path_factory, num_records, position, flip
):
    """A flipped byte anywhere corrupts at most its record — or merges two
    neighbours when the flipped byte *is* a record separator."""
    path = tmp_path_factory.mktemp("journal") / "journal.log"
    records = _records(num_records)
    _write(path, records)
    data = bytearray(path.read_bytes())
    offset = min(int(position * len(data)), len(data) - 1)
    data[offset] ^= flip
    path.write_bytes(bytes(data))

    journal = CrashSafeJournal(path)
    replayed = journal.replay()  # must not raise
    assert len(replayed) >= num_records - 2
    # Whatever survived is genuine, uncorrupted content, in order.
    assert all(record in records for record in replayed)
    indices = [records.index(record) for record in replayed]
    assert indices == sorted(indices)
