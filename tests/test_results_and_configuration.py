"""Tests for the result types, configuration plumbing and DD support tables."""

import pytest

from repro.core.configuration import Configuration
from repro.core.results import EquivalenceCheckResult, EquivalenceCriterion
from repro.dd.complexvalue import ckey, is_close, is_one, is_zero
from repro.dd.compute_table import ComputeTable
from repro.dd.unique_table import UniqueTable
from repro.utils.timing import Stopwatch, timed


class TestEquivalenceCriterion:
    @pytest.mark.parametrize(
        "criterion,expected",
        [
            (EquivalenceCriterion.EQUIVALENT, True),
            (EquivalenceCriterion.EQUIVALENT_UP_TO_GLOBAL_PHASE, True),
            (EquivalenceCriterion.PROBABLY_EQUIVALENT, True),
            (EquivalenceCriterion.NOT_EQUIVALENT, False),
            (EquivalenceCriterion.NO_INFORMATION, False),
        ],
    )
    def test_considered_equivalent(self, criterion, expected):
        assert criterion.considered_equivalent is expected

    def test_values_are_stable_strings(self):
        assert EquivalenceCriterion.EQUIVALENT.value == "equivalent"
        assert EquivalenceCriterion.NOT_EQUIVALENT.value == "not_equivalent"


class TestEquivalenceCheckResult:
    def test_total_time(self):
        result = EquivalenceCheckResult(
            EquivalenceCriterion.EQUIVALENT,
            method="alternating",
            time_transformation=0.25,
            time_check=0.5,
        )
        assert result.total_time == pytest.approx(0.75)
        assert result.equivalent

    def test_str_contains_key_fields(self):
        result = EquivalenceCheckResult(
            EquivalenceCriterion.NOT_EQUIVALENT, method="simulation", strategy=None
        )
        text = str(result)
        assert "not_equivalent" in text
        assert "method=simulation" in text

    def test_details_default_is_independent(self):
        first = EquivalenceCheckResult(EquivalenceCriterion.EQUIVALENT, method="a")
        second = EquivalenceCheckResult(EquivalenceCriterion.EQUIVALENT, method="a")
        first.details["x"] = 1
        assert "x" not in second.details


class TestConfiguration:
    def test_frozen(self):
        config = Configuration()
        with pytest.raises(Exception):
            config.method = "construction"  # type: ignore[misc]

    def test_updated_chains(self):
        config = Configuration().updated(strategy="naive").updated(backend="dense")
        assert config.strategy == "naive"
        assert config.backend == "dense"


class TestComplexValueHelpers:
    def test_ckey_collapses_nearby_values(self):
        assert ckey(0.1 + 0.2j) == ckey(0.1 + 1e-14 + 0.2j)

    def test_ckey_normalizes_negative_zero(self):
        assert ckey(complex(-0.0, -0.0)) == (0.0, 0.0)

    def test_predicates(self):
        assert is_zero(1e-12)
        assert not is_zero(1e-3)
        assert is_one(1.0 + 1e-12)
        assert is_close(0.5 + 0.5j, 0.5 + 0.5j + 1e-13)


class TestSupportTables:
    def test_unique_table_hash_consing(self):
        from repro.dd.nodes import VEdge, VNode

        table: UniqueTable = UniqueTable()
        edges = (VEdge(None, 1.0), VEdge(None, 0.0))
        first = table.lookup(0, edges, lambda idx, e: VNode(idx, tuple(e)))
        second = table.lookup(0, edges, lambda idx, e: VNode(idx, tuple(e)))
        assert first is second
        assert len(table) == 1
        assert table.hit_ratio == pytest.approx(0.5)
        table.clear()
        assert len(table) == 0

    def test_compute_table(self):
        table = ComputeTable("test")
        assert table.get("key") is None
        table.put("key", 42)
        assert table.get("key") == 42
        assert table.hit_ratio == pytest.approx(0.5)
        assert "test" in repr(table)
        table.clear()
        assert len(table) == 0


class TestTimingHelpers:
    def test_stopwatch_accumulates(self):
        watch = Stopwatch()
        with watch.lap("a"):
            pass
        with watch.lap("a"):
            pass
        assert watch["a"] >= 0.0
        assert watch.get("missing", 1.5) == 1.5
        assert "a" in watch.laps

    def test_timed(self):
        value, elapsed = timed(lambda: 21 * 2)
        assert value == 42
        assert elapsed >= 0.0
