"""Tests for the library-driven peephole rewrite checker.

The rewrite checker is a *prover*: it decides basis-translated pairs by
reducing G . G'^-1 toward the identity with 2x2 arithmetic, never building a
decision diagram, and returns NO_INFORMATION (never NOT_EQUIVALENT) when the
reduction leaves residual gates.  The agreement tests assert the
entry-for-entry property the ISSUE requires: everywhere both the rewrite
checker and the DD portfolio decide, the verdicts are identical — on both
batch executors.
"""

import math

import pytest

from repro.algorithms import ghz_ladder, qft_static_benchmark
from repro.circuit import QuantumCircuit
from repro.circuit.random_circuits import random_static_circuit
from repro.compilation import (
    decompose_to_cx_and_single_qubit,
    rewrite_single_qubit_to_u,
)
from repro.core import Configuration, EquivalenceCriterion
from repro.core.checkers.rewrite import RewriteChecker
from repro.core.manager import EquivalenceCheckingManager

SEED = 17

DECIDED = (
    EquivalenceCriterion.EQUIVALENT,
    EquivalenceCriterion.EQUIVALENT_UP_TO_GLOBAL_PHASE,
)


def _check(first, second, **config):
    checker = RewriteChecker()
    configuration = Configuration(**config) if config else Configuration()
    return checker.check(first, second, configuration)


class TestDirectOutcomes:
    def test_translated_pair_is_proved_without_any_dd(self):
        first = qft_static_benchmark(4)
        second = rewrite_single_qubit_to_u(decompose_to_cx_and_single_qubit(first))
        outcome = _check(first, second)
        assert outcome.criterion in DECIDED
        statistics = outcome.details["rewrite_statistics"]
        assert statistics["proved"] is True
        assert statistics["remaining"] == 0
        assert "dd_statistics" not in outcome.details

    def test_identical_pair_reduces_to_identity(self):
        first = ghz_ladder(3)
        outcome = _check(first, first.copy())
        assert outcome.criterion == EquivalenceCriterion.EQUIVALENT

    def test_global_phase_difference_is_classified(self):
        first = QuantumCircuit(1, name="zero")
        second = QuantumCircuit(1, name="phase")
        second.global_phase(1.0)
        outcome = _check(first, second)
        assert outcome.criterion == EquivalenceCriterion.EQUIVALENT_UP_TO_GLOBAL_PHASE
        assert outcome.details["residual_phase"] == pytest.approx(-1.0)

    def test_inequivalent_pair_yields_no_information_not_a_refutation(self):
        first = ghz_ladder(3)
        second = ghz_ladder(3)
        second.x(0)
        outcome = _check(first, second)
        assert outcome.criterion == EquivalenceCriterion.NO_INFORMATION
        assert outcome.details["rewrite_statistics"]["proved"] is False

    def test_qubit_count_mismatch_is_no_information(self):
        outcome = _check(ghz_ladder(2), ghz_ladder(3))
        assert outcome.criterion == EquivalenceCriterion.NO_INFORMATION

    def test_dynamic_circuit_is_no_information(self):
        dynamic = QuantumCircuit(1, 1, name="dynamic")
        dynamic.h(0)
        dynamic.measure(0, 0)
        dynamic.x(0, condition=(dynamic.cregs[0], 1))
        outcome = _check(dynamic, dynamic.copy())
        assert outcome.criterion == EquivalenceCriterion.NO_INFORMATION
        assert "reason" in outcome.details

    def test_commuted_cx_is_beyond_the_peephole(self):
        # cx(0,1) cx(2,3) vs the same pair swapped commutes, but the
        # peephole has no commutation rules: honest NO_INFORMATION.
        first = QuantumCircuit(4, name="a")
        first.cx(0, 1)
        first.cx(2, 3)
        second = QuantumCircuit(4, name="b")
        second.cx(2, 3)
        second.cx(0, 1)
        outcome = _check(first, second)
        assert outcome.criterion in (
            EquivalenceCriterion.NO_INFORMATION,
            *DECIDED,
        )
        assert outcome.criterion != EquivalenceCriterion.NOT_EQUIVALENT


class TestManagerIntegration:
    def test_rewrite_decides_before_any_dd_in_the_adaptive_schedule(self):
        configuration = Configuration(
            portfolio=("rewrite", "alternating"), scheduler="adaptive", seed=SEED
        )
        manager = EquivalenceCheckingManager(configuration)
        first = qft_static_benchmark(4)
        second = decompose_to_cx_and_single_qubit(first)
        result = manager.run(first, second)
        assert result.equivalent is True
        assert result.decided_by == "rewrite"
        assert result.schedule[0] == "rewrite"

    def test_rewrite_alone_cannot_misclassify(self):
        configuration = Configuration(portfolio=("rewrite",), seed=SEED)
        manager = EquivalenceCheckingManager(configuration)
        first = ghz_ladder(3)
        second = ghz_ladder(3)
        second.z(2)
        result = manager.run(first, second)
        assert result.criterion == EquivalenceCriterion.NO_INFORMATION


def _translated_pairs():
    """Random unitary circuits paired with their basis translations."""
    pairs = []
    for seed in range(6):
        circuit = random_static_circuit(3, 4, seed=SEED + seed)
        level_one = decompose_to_cx_and_single_qubit(circuit)
        level_two = rewrite_single_qubit_to_u(level_one)
        pairs.append((circuit, level_one))
        pairs.append((circuit, level_two))
    return pairs


class TestAgreementWithDDCheckers:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_verdicts_agree_entry_for_entry_with_dd_portfolio(self, executor):
        pairs = _translated_pairs()
        rewrite_config = Configuration(
            portfolio=("rewrite",),
            seed=SEED,
            verdict_cache=False,
            executor=executor,
            max_workers=2,
        )
        dd_config = Configuration(
            portfolio=("alternating",),
            seed=SEED,
            verdict_cache=False,
            executor=executor,
            max_workers=2,
        )
        rewrite_batch = EquivalenceCheckingManager(rewrite_config).verify_batch(pairs)
        dd_batch = EquivalenceCheckingManager(dd_config).verify_batch(pairs)
        assert rewrite_batch.num_pairs == dd_batch.num_pairs == len(pairs)
        decided = 0
        for rewrite_entry, dd_entry in zip(rewrite_batch.entries, dd_batch.entries):
            assert rewrite_entry.result is not None
            assert dd_entry.result is not None
            rewrite_criterion = rewrite_entry.result.criterion
            dd_criterion = dd_entry.result.criterion
            assert rewrite_criterion != EquivalenceCriterion.NOT_EQUIVALENT
            if (
                rewrite_criterion in DECIDED
                and dd_criterion
                in (*DECIDED, EquivalenceCriterion.PROBABLY_EQUIVALENT)
            ):
                decided += 1
                assert rewrite_entry.result.equivalent == dd_entry.result.equivalent
        # The rewrite checker must actually decide translated pairs, not
        # no-information its way through the batch.
        assert decided >= len(pairs) // 2
