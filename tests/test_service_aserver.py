"""End-to-end tests of the asyncio verification server front end.

Mirrors ``tests/test_service_server.py`` for the round-trip basics, then
covers what the async front end adds: bounded-queue backpressure (429 +
``Retry-After``), per-client token-bucket rate limiting, long-poll wakeup
ordering, and thread/async backend agreement on verdict payloads.
"""

import socket
import threading
import time

import pytest

from repro.algorithms import ghz_ladder, ghz_with_bug
from repro.core import Configuration
from repro.exceptions import ServiceError
from repro.service import (
    AsyncVerificationServer,
    VerificationClient,
    VerificationServer,
)

SEED = 5


@pytest.fixture()
def server():
    """A live asyncio server on an ephemeral port, torn down after the test."""
    instance = AsyncVerificationServer(
        port=0, configuration=Configuration(seed=SEED, max_workers=2)
    )
    instance.start_background()
    try:
        yield instance
    finally:
        instance.close()


@pytest.fixture()
def client(server):
    return VerificationClient(server.url, timeout=10.0)


def _hold_worker(service):
    """Make every manager run block on the returned event (test hook)."""
    release = threading.Event()
    original = service.manager.run

    def held(first, second, **kwargs):
        assert release.wait(30.0), "test forgot to release the worker"
        return original(first, second, **kwargs)

    service.manager.run = held
    return release


class TestAsyncRoundTrip:
    def test_health_reports_version(self, client):
        import repro

        payload = client.health()
        assert payload["ok"] is True
        assert payload["version"] == repro.__version__

    def test_submit_wait_result(self, client):
        submission = client.submit(ghz_ladder(3), ghz_ladder(3))
        assert submission["coalesced"] is False
        payload = client.wait(submission["job_id"], timeout=30.0)
        assert payload["criterion"] == "equivalent"
        assert payload["equivalent"] is True
        assert client.status(submission["job_id"])["status"] == "done"

    def test_non_equivalent_verdict(self, client):
        payload = client.verify(ghz_ladder(3), ghz_with_bug(3), timeout=30.0)
        assert payload["criterion"] == "not_equivalent"

    def test_unknown_endpoint_and_method(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client._request("PUT", "/jobs")
        assert excinfo.value.status == 405

    def test_bad_submission_body_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/jobs", {"first": 3, "second": None})
        assert excinfo.value.status == 400

    def test_malformed_request_line_gets_400(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=5) as sock:
            sock.sendall(b"GARBAGE\r\n\r\n")
            response = sock.recv(4096)
        assert b"400" in response.split(b"\r\n", 1)[0]

    def test_keep_alive_serves_multiple_requests_per_connection(self, server):
        request = b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"
        with socket.create_connection(("127.0.0.1", server.port), timeout=5) as sock:
            for _ in range(3):
                sock.sendall(request)
                chunk = sock.recv(4096)
                assert chunk.startswith(b"HTTP/1.1 200")

    def test_stats_expose_queue_fields(self, client, server):
        stats = client.stats()
        assert stats["queue_depth"] == 0
        assert stats["queue_limit"] == server.service.queue_limit
        assert "rejected" in stats


class TestLongPoll:
    def test_warm_cache_verify_takes_two_requests(self, client, monkeypatch):
        first, second = ghz_ladder(3), ghz_ladder(3)
        client.verify(first, second, timeout=30.0)  # warm the verdict cache
        calls = []
        original = client._request

        def counting(method, path, payload=None, timeout=None, headers=None):
            calls.append((method, path))
            return original(method, path, payload, timeout, headers=headers)

        monkeypatch.setattr(client, "_request", counting)
        payload = client.verify(first, second, timeout=30.0)
        assert payload["cached"] is True
        assert len(calls) == 2, f"expected submit+result, got {calls}"
        assert calls[0][0] == "POST"
        assert "wait=" in calls[1][1]

    def test_long_poll_blocks_until_settlement_and_wakes_all_waiters(
        self, server, client
    ):
        release = _hold_worker(server.service)
        submission = client.submit(ghz_ladder(3), ghz_ladder(3))
        job_id = submission["job_id"]
        results: list[dict] = []
        errors: list[Exception] = []

        def waiter():
            try:
                results.append(client.result(job_id, wait=20.0))
            except Exception as error:  # noqa: BLE001 - collected for the assertion
                errors.append(error)

        threads = [threading.Thread(target=waiter) for _ in range(3)]
        started = time.monotonic()
        for thread in threads:
            thread.start()
        time.sleep(0.3)
        assert not results, "long-poll answered before the job settled"
        release.set()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
        assert len(results) == 3
        assert all(payload["criterion"] == "equivalent" for payload in results)
        assert time.monotonic() - started < 15.0

    def test_zero_wait_is_immediate_409_while_running(self, server, client):
        release = _hold_worker(server.service)
        try:
            submission = client.submit(ghz_ladder(3), ghz_ladder(3))
            with pytest.raises(ServiceError) as excinfo:
                client.result(submission["job_id"])
            assert excinfo.value.status == 409
        finally:
            release.set()

    def test_invalid_wait_value_is_400(self, server, client):
        submission = client.submit(ghz_ladder(3), ghz_ladder(3))
        client.wait(submission["job_id"], timeout=30.0)
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", f"/jobs/{submission['job_id']}/result?wait=banana")
        assert excinfo.value.status == 400


class TestBackpressure:
    def test_saturated_queue_answers_429_with_retry_after(self):
        server = AsyncVerificationServer(
            port=0,
            configuration=Configuration(seed=SEED, max_workers=1),
            queue_limit=1,
        )
        server.start_background()
        release = _hold_worker(server.service)
        try:
            client = VerificationClient(server.url, timeout=10.0)
            accepted = client.submit(ghz_ladder(3), ghz_ladder(3))
            assert accepted["coalesced"] is False
            with pytest.raises(ServiceError) as excinfo:
                client.submit(ghz_ladder(4), ghz_ladder(4))
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after is not None
            assert excinfo.value.retry_after >= 1.0
            # Coalescing duplicates consume no queue slot, so they are
            # accepted even at the high-water mark.
            duplicate = client.submit(ghz_ladder(3), ghz_ladder(3))
            assert duplicate["coalesced"] is True
            assert duplicate["job_id"] == accepted["job_id"]
            release.set()
            payload = client.wait(accepted["job_id"], timeout=30.0)
            assert payload["criterion"] == "equivalent"
            # The queue drained: the previously rejected pair is accepted now.
            assert client.submit(ghz_ladder(4), ghz_ladder(4))["job_id"]
            assert client.stats()["rejected"] == 1
        finally:
            release.set()
            server.close()

    def test_jobs_table_stays_bounded_under_saturating_load(self):
        server = AsyncVerificationServer(
            port=0,
            configuration=Configuration(seed=SEED, max_workers=1),
            queue_limit=2,
        )
        server.start_background()
        release = _hold_worker(server.service)
        try:
            client = VerificationClient(server.url, timeout=10.0)
            outcomes = {"accepted": 0, "rejected": 0}
            for size in range(2, 14):  # twelve distinct pairs against limit 2
                try:
                    client.submit(ghz_ladder(size), ghz_ladder(size))
                    outcomes["accepted"] += 1
                except ServiceError as error:
                    assert error.status == 429
                    assert error.retry_after is not None
                    outcomes["rejected"] += 1
            assert outcomes["accepted"] == 2
            assert outcomes["rejected"] == 10
            assert server.service.queue_depth() <= 2
        finally:
            release.set()
            server.close()


class TestRateLimit:
    def test_token_bucket_rejects_burst_overflow(self):
        server = AsyncVerificationServer(
            port=0,
            configuration=Configuration(seed=SEED, max_workers=2),
            rate_limit=0.5,
            rate_burst=2,
        )
        server.start_background()
        try:
            client = VerificationClient(server.url, timeout=10.0)
            client.submit(ghz_ladder(2), ghz_ladder(2))
            client.submit(ghz_ladder(3), ghz_ladder(3))
            with pytest.raises(ServiceError) as excinfo:
                client.submit(ghz_ladder(4), ghz_ladder(4))
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after is not None
            assert excinfo.value.retry_after > 0
            # GETs are not rate limited: the client can still collect.
            assert client.stats()["submitted"] == 2
        finally:
            server.close()


class TestPrunedJobs:
    def test_pruned_job_result_served_from_cache(self):
        server = AsyncVerificationServer(
            port=0,
            configuration=Configuration(seed=SEED, max_workers=1),
            max_finished_jobs=1,
        )
        server.start_background()
        try:
            client = VerificationClient(server.url, timeout=10.0)
            first = client.submit(ghz_ladder(3), ghz_ladder(3))
            client.wait(first["job_id"], timeout=30.0)
            second = client.submit(ghz_ladder(4), ghz_ladder(4))
            client.wait(second["job_id"], timeout=30.0)
            # first settled job is pruned (retention=1) but its verdict is
            # still served, flagged as coming from the cache.
            payload = client.result(first["job_id"])
            assert payload["criterion"] == "equivalent"
            assert payload["served_from"] == "verdict_cache"
            with pytest.raises(ServiceError) as excinfo:
                client.status(first["job_id"])
            assert excinfo.value.status == 410
        finally:
            server.close()

    def test_pruned_and_uncached_job_is_a_distinguishable_410(self):
        server = AsyncVerificationServer(
            port=0,
            configuration=Configuration(seed=SEED, max_workers=1),
            max_finished_jobs=1,
            cache=False,
        )
        server.start_background()
        try:
            client = VerificationClient(server.url, timeout=10.0)
            first = client.submit(ghz_ladder(3), ghz_ladder(3))
            client.wait(first["job_id"], timeout=30.0)
            second = client.submit(ghz_ladder(4), ghz_ladder(4))
            client.wait(second["job_id"], timeout=30.0)
            with pytest.raises(ServiceError) as excinfo:
                client.wait(first["job_id"], timeout=5.0)
            assert excinfo.value.status == 410
            assert "resubmit" in str(excinfo.value)
        finally:
            server.close()


class TestConcurrency:
    def test_concurrent_identical_submissions_coalesce_to_one_job(self, server):
        barrier = threading.Barrier(6)
        results: list[dict] = []
        lock = threading.Lock()

        def submit():
            worker_client = VerificationClient(server.url, timeout=10.0)
            barrier.wait(timeout=10)
            submission = worker_client.submit(ghz_ladder(5), ghz_ladder(5))
            with lock:
                results.append(submission)

        threads = [threading.Thread(target=submit) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert len(results) == 6
        job_ids = {submission["job_id"] for submission in results}
        fresh = [s for s in results if not s["coalesced"]]
        assert len(job_ids) == 1
        assert len(fresh) == 1


class TestMetricsEndpoint:
    REQUIRED_FAMILIES = (
        "repro_service_queue_depth",
        "repro_service_submissions_total",
        "repro_service_coalesced_total",
        "repro_verdict_cache_hit_ratio",
        "repro_checker_latency_seconds",
        "repro_canonical_fingerprints_total",
        "repro_rewrite_reductions_total",
        "repro_rewrite_events_total",
    )

    @staticmethod
    def _assert_parseable_prometheus(text: str) -> dict[str, str]:
        """Minimal format check: TYPE lines agree with sample lines."""
        types: dict[str, str] = {}
        for line in text.splitlines():
            if line.startswith("# TYPE "):
                _, _, name, kind = line.split(" ", 3)
                assert kind in ("counter", "gauge", "histogram")
                types[name] = kind
            elif line and not line.startswith("#"):
                series, _, value = line.rpartition(" ")
                float(value)  # every sample value must parse
                assert series
        return types

    def test_async_metrics_cover_required_families(self, client):
        client.verify(ghz_ladder(3), ghz_ladder(3), timeout=30.0)
        client.verify(ghz_ladder(3), ghz_ladder(3), timeout=30.0)
        types = self._assert_parseable_prometheus(client.metrics())
        for family in self.REQUIRED_FAMILIES:
            assert family in types, f"missing metric family {family}"
        assert types["repro_checker_latency_seconds"] == "histogram"

    def test_thread_metrics_cover_required_families(self):
        server = VerificationServer(
            port=0, configuration=Configuration(seed=SEED, max_workers=2)
        )
        server.start_background()
        try:
            client = VerificationClient(server.url, timeout=10.0)
            client.verify(ghz_ladder(3), ghz_ladder(3), timeout=30.0)
            client.verify(ghz_ladder(3), ghz_ladder(3), timeout=30.0)
            types = self._assert_parseable_prometheus(client.metrics())
            for family in self.REQUIRED_FAMILIES:
                assert family in types, f"missing metric family {family}"
        finally:
            server.close()


class TestBackendAgreement:
    #: Payload fields that must be identical across backends; timings and
    #: job ids are inherently volatile and excluded.
    STABLE_FIELDS = ("first", "second", "criterion", "equivalent", "decided_by")

    def test_thread_and_async_backends_return_identical_verdict_payloads(self):
        pairs = [
            (ghz_ladder(3), ghz_ladder(3)),
            (ghz_ladder(3), ghz_with_bug(3)),
        ]
        payloads: dict[str, list[dict]] = {}
        configuration = Configuration(seed=SEED, max_workers=2)
        thread_server = VerificationServer(port=0, configuration=configuration)
        thread_server.start_background()
        try:
            thread_client = VerificationClient(thread_server.url, timeout=10.0)
            payloads["thread"] = [
                thread_client.verify(first, second, timeout=30.0)
                for first, second in pairs
            ]
        finally:
            thread_server.close()
        async_server = AsyncVerificationServer(port=0, configuration=configuration)
        async_server.start_background()
        try:
            async_client = VerificationClient(async_server.url, timeout=10.0)
            payloads["async"] = [
                async_client.verify(first, second, timeout=30.0)
                for first, second in pairs
            ]
        finally:
            async_server.close()
        for thread_payload, async_payload in zip(payloads["thread"], payloads["async"]):
            for field in self.STABLE_FIELDS:
                assert thread_payload.get(field) == async_payload.get(field), field
