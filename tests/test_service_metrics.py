"""Tests for the unified metrics registry and its integration hooks."""

import threading

import pytest

from repro.algorithms import ghz_ladder, iterative_qpe, qpe_static
from repro.compilation import rewrite_single_qubit_to_u
from repro.core.configuration import Configuration
from repro.core.manager import EquivalenceCheckingManager
from repro.dd.package import DDPackage
from repro.service.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    publish_dd_statistics,
    publish_rewrite_statistics,
)
from repro.service.server import VerificationService


def _parse_exposition(text: str) -> dict[str, float]:
    """Sample lines of a Prometheus text page as ``{series: value}``."""
    samples: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        series, _, value = line.rpartition(" ")
        assert series, f"malformed sample line {line!r}"
        samples[series] = float(value)
    return samples


class TestInstruments:
    def test_counter_counts_and_renders(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total", "Jobs.", labelnames=("status",))
        counter.inc(status="done")
        counter.inc(2, status="failed")
        samples = _parse_exposition(registry.render())
        assert samples['jobs_total{status="done"}'] == 1
        assert samples['jobs_total{status="failed"}'] == 2

    def test_counter_rejects_decrease_and_label_mismatch(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "C.", labelnames=("k",))
        with pytest.raises(ValueError):
            counter.inc(-1, k="a")
        with pytest.raises(ValueError):
            counter.inc(wrong="a")

    def test_unlabelled_counter_renders_zero_sample(self):
        registry = MetricsRegistry()
        registry.counter("idle_total", "Never incremented.")
        assert "idle_total 0" in registry.render().splitlines()

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth", "Depth.")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value() == 4
        assert "depth 4" in registry.render().splitlines()

    def test_gauge_callback_evaluated_at_scrape_time(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("live", "Live value.")
        state = {"value": 1.0}
        gauge.set_function(lambda: state["value"])
        assert "live 1" in registry.render().splitlines()
        state["value"] = 7.5
        assert "live 7.5" in registry.render().splitlines()

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "lat_seconds", "Latency.", buckets=(0.1, 1.0, 10.0)
        )
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        samples = _parse_exposition(registry.render())
        assert samples['lat_seconds_bucket{le="0.1"}'] == 1
        assert samples['lat_seconds_bucket{le="1"}'] == 3
        assert samples['lat_seconds_bucket{le="10"}'] == 4
        assert samples['lat_seconds_bucket{le="+Inf"}'] == 5
        assert samples["lat_seconds_count"] == 5
        assert samples["lat_seconds_sum"] == pytest.approx(56.05)

    def test_histogram_with_labels(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "h_seconds", "H.", labelnames=("checker",), buckets=(1.0,)
        )
        histogram.observe(0.5, checker="alternating")
        histogram.observe(2.0, checker="alternating")
        samples = _parse_exposition(registry.render())
        assert samples['h_seconds_bucket{checker="alternating", le="1"}'] == 1
        assert samples['h_seconds_bucket{checker="alternating", le="+Inf"}'] == 2
        assert histogram.count(checker="alternating") == 2

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        counter = registry.counter("esc_total", "E.", labelnames=("path",))
        counter.inc(path='a"b\\c\nd')
        rendered = registry.render()
        assert 'path="a\\"b\\\\c\\nd"' in rendered

    def test_invalid_names_are_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad name", "B.")
        with pytest.raises(ValueError):
            registry.counter("ok_total", "B.", labelnames=("bad-label",))


class TestRegistry:
    def test_reregistration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "X.", labelnames=("a",))
        second = registry.counter("x_total", "X again.", labelnames=("a",))
        assert first is second

    def test_kind_or_schema_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "X.", labelnames=("a",))
        with pytest.raises(ValueError):
            registry.gauge("x_total", "X.", labelnames=("a",))
        with pytest.raises(ValueError):
            registry.counter("x_total", "X.", labelnames=("b",))

    def test_collector_runs_per_scrape_and_failures_are_isolated(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("harvested", "H.")
        calls = []

        def good():
            calls.append(1)
            gauge.set(len(calls))

        def bad():
            raise RuntimeError("sick source")

        registry.add_collector(bad)
        registry.add_collector(good)
        registry.render()
        rendered = registry.render()
        assert "harvested 2" in rendered.splitlines()

    def test_concurrent_observations_do_not_lose_counts(self):
        registry = MetricsRegistry()
        counter = registry.counter("hot_total", "Hot.")
        histogram = registry.histogram("hot_seconds", "Hot.", buckets=(1.0,))

        def hammer():
            for _ in range(500):
                counter.inc()
                histogram.observe(0.5)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value() == 4000
        assert histogram.count() == 4000


class TestIntegrationHooks:
    def test_manager_observes_checker_latency_and_run_outcomes(self):
        registry = MetricsRegistry()
        manager = EquivalenceCheckingManager(
            Configuration(seed=11, verdict_cache=True)
        )
        manager.metrics = registry
        first, second = iterative_qpe(3), qpe_static(3)
        manager.run(first, second)
        manager.run(first, second)  # warm: cache hit
        runs = registry.get("repro_manager_runs_total")
        assert runs.value(outcome="executed") == 1
        assert runs.value(outcome="cache_hit") == 1
        latency = registry.get("repro_checker_latency_seconds")
        assert latency is not None and latency.kind == "histogram"
        rendered = registry.render()
        assert "repro_checker_latency_seconds_bucket" in rendered

    def test_manager_harvests_dd_statistics_from_attempts(self):
        registry = MetricsRegistry()
        manager = EquivalenceCheckingManager(
            Configuration(portfolio=("alternating",), seed=11, verdict_cache=False)
        )
        manager.metrics = registry
        manager.run(iterative_qpe(3), qpe_static(3))
        rendered = registry.render()
        assert "repro_dd_events_total" in rendered

    def test_dd_package_publishes_into_registry(self):
        registry = MetricsRegistry()
        package = DDPackage(2)
        key = ("h", (0,))
        assert package.gate_cache_lookup(key) is None  # miss
        package.gate_cache_store(key, package.identity())
        assert package.gate_cache_lookup(key) is not None  # hit
        package.publish_metrics(registry, checker="unit-test")
        counter = registry.get("repro_dd_events_total")
        assert counter.value(checker="unit-test", event="gate_cache_hits") >= 1
        assert counter.value(checker="unit-test", event="gate_cache_misses") >= 1

    def test_publish_dd_statistics_ignores_missing_keys(self):
        registry = MetricsRegistry()
        publish_dd_statistics(registry, {"vector_nodes": 3}, checker="partial")
        nodes = registry.get("repro_dd_last_run_nodes")
        assert nodes.value(checker="partial", kind="vector_nodes") == 3


class TestRewriteAndCanonicalMetrics:
    def test_publish_rewrite_statistics_accumulates(self):
        registry = MetricsRegistry()
        publish_rewrite_statistics(
            registry,
            {
                "input_gates": 10,
                "merged_single_qubit": 4,
                "cancelled_cx": 2,
                "remaining": 0,
                "proved": True,
            },
        )
        publish_rewrite_statistics(registry, {"proved": False, "remaining": 3})
        events = registry.get("repro_rewrite_events_total")
        assert events.value(checker="rewrite", event="input_gates") == 10
        assert events.value(checker="rewrite", event="merged_single_qubit") == 4
        assert events.value(checker="rewrite", event="cancelled_cx") == 2
        reductions = registry.get("repro_rewrite_reductions_total")
        assert reductions.value(checker="rewrite", outcome="proved") == 1
        assert reductions.value(checker="rewrite", outcome="residual") == 1
        remaining = registry.get("repro_rewrite_last_run_remaining")
        assert remaining.value(checker="rewrite") == 3

    def test_manager_harvests_rewrite_statistics_from_attempts(self):
        registry = MetricsRegistry()
        manager = EquivalenceCheckingManager(
            Configuration(portfolio=("rewrite",), seed=11, verdict_cache=False)
        )
        manager.metrics = registry
        first = ghz_ladder(3)
        second = rewrite_single_qubit_to_u(first)
        result = manager.run(first, second)
        assert result.equivalent is True
        assert result.decided_by == "rewrite"
        reductions = registry.get("repro_rewrite_reductions_total")
        assert reductions.value(checker="rewrite", outcome="proved") == 1
        events = registry.get("repro_rewrite_events_total")
        assert events.value(checker="rewrite", event="input_gates") > 0

    def test_canonical_cache_hit_counts_and_fans_out(self):
        registry = MetricsRegistry()
        manager = EquivalenceCheckingManager(
            Configuration(seed=11, verdict_cache=True)
        )
        manager.metrics = registry
        first = ghz_ladder(3)
        cold = manager.run(first, first.copy())
        assert cold.cached is False
        # The same pair at another translation level: raw fingerprints differ
        # but the canonical form is translation-level-invariant.
        translated = rewrite_single_qubit_to_u(first)
        cross = manager.run(translated, translated.copy())
        assert cross.cached is True
        assert cross.cached_via == "canonical_fingerprint"
        runs = registry.get("repro_manager_runs_total")
        assert runs.value(outcome="canonical_cache_hit") == 1
        canonical = registry.get("repro_canonical_fingerprints_total")
        assert canonical.value(status="computed") >= 1
        # The canonical hit fanned out to the raw key: re-running the
        # translated pair now hits the first (raw-fingerprint) tier.
        again = manager.run(translated, translated.copy())
        assert again.cached_via == "fingerprint"

    def test_canonicalize_false_disables_the_canonical_tier(self):
        registry = MetricsRegistry()
        manager = EquivalenceCheckingManager(
            Configuration(seed=11, verdict_cache=True, canonicalize=False)
        )
        manager.metrics = registry
        first = ghz_ladder(3)
        manager.run(first, first.copy())
        cross = manager.run(
            rewrite_single_qubit_to_u(first),
            rewrite_single_qubit_to_u(first),
        )
        assert cross.cached is False
        canonical = registry.get("repro_canonical_fingerprints_total")
        assert canonical is None or canonical.value(status="computed") == 0

    def test_service_stats_expose_canonicalization_and_rewrite_sections(self):
        service = VerificationService(Configuration(seed=11))
        try:
            stats = service.stats()
            assert stats["canonicalization"] == {
                "enabled": True,
                "cache_hits": 0,
                "fingerprints_computed": 0,
                "fingerprints_unavailable": 0,
            }
            assert stats["rewrite"]["proved"] == 0
            assert set(stats["rewrite"]["events"]) == {
                "input_gates",
                "merged_single_qubit",
                "cancelled_cx",
            }
            # Instruments are pre-registered: the families render on the
            # first scrape, before any run populates them.
            rendered = service.metrics.render()
            for family in (
                "repro_canonical_fingerprints_total",
                "repro_rewrite_reductions_total",
                "repro_rewrite_events_total",
            ):
                assert f"# TYPE {family} counter" in rendered
            first = ghz_ladder(3)
            service.manager.run(first, first.copy())
            translated = rewrite_single_qubit_to_u(first)
            service.manager.run(translated, translated.copy())
            stats = service.stats()
            assert stats["canonicalization"]["cache_hits"] == 1
            assert stats["canonicalization"]["fingerprints_computed"] >= 1
        finally:
            service.shutdown(wait=False)


class TestExports:
    def test_service_package_reexports(self):
        from repro.service import MetricsRegistry as Exported

        assert Exported is MetricsRegistry
        assert {Counter.kind, Gauge.kind, Histogram.kind} == {
            "counter",
            "gauge",
            "histogram",
        }
