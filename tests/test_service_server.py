"""End-to-end tests of the verification job-queue server and client."""

import threading
import time

import pytest

from repro.algorithms import ghz_ladder, ghz_with_bug, qft_dynamic, qft_static_benchmark
from repro.cli import build_parser, main
from repro.core import Configuration
from repro.exceptions import ServiceError
from repro.service import VerificationClient, VerificationServer, VerificationService

SEED = 5


@pytest.fixture()
def server():
    """A live server on an ephemeral port, torn down after the test."""
    instance = VerificationServer(
        port=0, configuration=Configuration(seed=SEED, max_workers=2)
    )
    instance.start_background()
    try:
        yield instance
    finally:
        instance.close()


@pytest.fixture()
def client(server):
    return VerificationClient(server.url, timeout=10.0)


class TestServerRoundTrip:
    def test_health_reports_version(self, client):
        import repro

        payload = client.health()
        assert payload["ok"] is True
        assert payload["version"] == repro.__version__

    def test_submit_poll_result(self, client):
        first, second = ghz_ladder(3), ghz_ladder(3)
        submission = client.submit(first, second)
        assert submission["coalesced"] is False
        assert submission["fingerprint"]
        payload = client.wait(submission["job_id"], timeout=30.0)
        assert payload["criterion"] == "equivalent"
        assert payload["equivalent"] is True
        assert payload["decided_by"] is not None
        status = client.status(submission["job_id"])
        assert status["status"] == "done"

    def test_non_equivalent_verdict(self, client):
        payload = client.verify(ghz_ladder(3), ghz_with_bug(3), timeout=30.0)
        assert payload["criterion"] == "not_equivalent"
        assert payload["equivalent"] is False

    def test_repeat_submission_is_served_from_the_cache(self, client):
        first, second = ghz_ladder(4), ghz_ladder(4)
        cold = client.verify(first, second, timeout=30.0)
        warm = client.verify(first, second, timeout=30.0)
        assert warm["criterion"] == cold["criterion"]
        assert cold["cached"] is False
        assert warm["cached"] is True

    def test_qasm_string_submission(self, client):
        payload = client.verify(
            ghz_ladder(3).to_qasm(), ghz_ladder(3).to_qasm(), timeout=30.0
        )
        assert payload["criterion"] == "equivalent"

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.status("job-999999")
        assert excinfo.value.status == 404

    def test_unknown_endpoint_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_malformed_submission_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.verify("OPENQASM 2.0; nonsense", ghz_ladder(2).to_qasm())
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/jobs", {"first": 1, "second": 2})
        assert excinfo.value.status == 400


class TestRequestDeduplication:
    def test_concurrent_identical_submissions_coalesce(self):
        # One worker, kept busy by a slower warmup job, so the two identical
        # submissions that follow are both still queued — the second MUST
        # coalesce onto the first instead of queueing a second run.
        server = VerificationServer(
            port=0, configuration=Configuration(seed=SEED, max_workers=1)
        )
        server.start_background()
        client = VerificationClient(server.url, timeout=10.0)
        try:
            warmup = client.submit(qft_static_benchmark(6), qft_dynamic(6))
            first, second = ghz_ladder(4), ghz_ladder(4)
            submission_one = client.submit(first, second)
            submission_two = client.submit(first, second)

            assert submission_one["coalesced"] is False
            assert submission_two["coalesced"] is True
            assert submission_two["job_id"] == submission_one["job_id"]

            verdict_one = client.wait(submission_one["job_id"], timeout=60.0)
            verdict_two = client.wait(submission_two["job_id"], timeout=60.0)
            assert verdict_one == verdict_two
            assert verdict_one["criterion"] == "equivalent"
            client.wait(warmup["job_id"], timeout=60.0)

            stats = client.stats()
            assert stats["coalesced"] == 1
            assert stats["submitted"] == 3
            assert stats["executed"] == 2  # warmup + one run for the pair
        finally:
            server.close()

    def test_resubmission_after_completion_queues_a_fresh_job(self, client):
        first, second = ghz_ladder(3), ghz_ladder(3)
        submission = client.submit(first, second)
        client.wait(submission["job_id"], timeout=30.0)
        again = client.submit(first, second)
        assert again["coalesced"] is False
        assert again["job_id"] != submission["job_id"]
        # ... but the fresh job is a verdict-cache hit, not a re-verification.
        assert client.wait(again["job_id"], timeout=30.0)["cached"] is True

    def test_stats_expose_cache_statistics(self, client):
        first, second = ghz_ladder(3), ghz_ladder(3)
        client.verify(first, second, timeout=30.0)
        client.verify(first, second, timeout=30.0)
        stats = client.stats()
        assert stats["cache"] is not None
        assert stats["cache"]["hits"] >= 1
        assert stats["jobs"].get("done", 0) >= 2


class TestCrossLevelCacheHit:
    def test_other_translation_level_is_a_verdict_cache_hit(self, client):
        from repro.compilation import rewrite_single_qubit_to_u

        first = ghz_ladder(3)
        cold = client.verify(first, first.copy(), timeout=30.0)
        assert cold["cached"] is False
        # The same pair at another translation level: raw fingerprints
        # differ, the canonical (translation-level-invariant) key hits.
        translated = rewrite_single_qubit_to_u(first)
        warm = client.verify(translated, translated.copy(), timeout=30.0)
        assert warm["cached"] is True
        assert warm["cached_via"] == "canonical_fingerprint"
        assert warm["criterion"] == cold["criterion"]
        stats = client.stats()
        assert stats["canonicalization"]["cache_hits"] >= 1


class TestServiceInProcess:
    def test_finished_jobs_are_pruned_beyond_the_retention_bound(self):
        service = VerificationService(
            Configuration(seed=SEED, max_workers=1), max_finished_jobs=2
        )
        try:
            job_ids = []
            for size in (2, 3, 4):  # three distinct pairs, run sequentially
                submission = service.submit(ghz_ladder(size), ghz_ladder(size))
                job_ids.append(submission["job_id"])
                deadline = 30.0
                while service.job_status(submission["job_id"])["status"] != "done":
                    time.sleep(0.01)
                    deadline -= 0.01
                    assert deadline > 0, "job did not finish"
            # Oldest settled job fell off the retention window: its status is
            # gone, but distinguishably so (410 "pruned", not a bare 404 as
            # for a job id this server never issued) ...
            with pytest.raises(ServiceError) as excinfo:
                service.job_status(job_ids[0])
            assert excinfo.value.status == 410
            with pytest.raises(ServiceError) as excinfo:
                service.job_status("job-999999")
            assert excinfo.value.status == 404
            # ... and its verdict is still served from the cache.
            pruned_result = service.job_result(job_ids[0])
            assert pruned_result["served_from"] == "verdict_cache"
            # ... the newest two are still pollable, and the verdict cache
            # still remembers the pruned pair.
            assert service.job_status(job_ids[2])["status"] == "done"
            resubmit = service.submit(ghz_ladder(2), ghz_ladder(2))
            while service.job_status(resubmit["job_id"])["status"] != "done":
                time.sleep(0.01)
            assert service.job_result(resubmit["job_id"])["cached"] is True
        finally:
            service.shutdown()

    def test_bogus_content_length_is_rejected(self, server):
        import http.client

        for value, expected in (("abc", 400), ("-5", 400), (str(10**9), 413)):
            connection = http.client.HTTPConnection(
                server.server_address[0], server.port, timeout=5
            )
            try:
                connection.putrequest("POST", "/jobs", skip_accept_encoding=True)
                connection.putheader("Content-Length", value)
                connection.endheaders()
                response = connection.getresponse()
                assert response.status == expected, (value, response.status)
                response.read()
            finally:
                connection.close()

    def test_stalled_body_does_not_pin_a_handler_thread(self, monkeypatch):
        # A client that claims a large Content-Length and then stalls must be
        # disconnected by the handler's socket timeout, not serviced forever.
        import socket

        from repro.service.server import _ServiceRequestHandler

        monkeypatch.setattr(_ServiceRequestHandler, "timeout", 0.5)
        stalled_server = VerificationServer(
            port=0, configuration=Configuration(seed=SEED, max_workers=1)
        )
        stalled_server.start_background()
        try:
            with socket.create_connection(
                (stalled_server.server_address[0], stalled_server.port), timeout=5
            ) as raw:
                raw.sendall(
                    b"POST /jobs HTTP/1.1\r\nHost: x\r\n"
                    b"Content-Length: 1000\r\n\r\npartial"
                )
                raw.settimeout(5)
                # Once its read times out the server answers 408 (if the
                # socket still accepts it) and closes the connection.
                received = b""
                while True:
                    chunk = raw.recv(4096)
                    if not chunk:
                        break
                    received += chunk
                assert received == b"" or b" 408 " in received.split(b"\r\n", 1)[0]
            # The worker thread is free again: a well-formed request succeeds.
            client = VerificationClient(stalled_server.url, timeout=10.0)
            assert client.health()["ok"] is True
        finally:
            stalled_server.close()

    def test_service_enables_the_verdict_cache_by_default(self):
        service = VerificationService(Configuration(seed=SEED))
        try:
            assert service.manager.verdict_cache is not None
        finally:
            service.shutdown(wait=False)

    def test_cache_false_opts_out(self):
        service = VerificationService(Configuration(seed=SEED), cache=False)
        try:
            assert service.manager.verdict_cache is None
        finally:
            service.shutdown(wait=False)

    def test_ultra_tight_tolerance_disables_coalescing(self):
        service = VerificationService(
            Configuration(seed=SEED, tolerance=1e-13, max_workers=1)
        )
        try:
            # Keep the single worker busy so both submissions stay queued —
            # they must still get distinct jobs at this tolerance.
            service.submit(qft_static_benchmark(6), qft_dynamic(6))
            first, second = ghz_ladder(4), ghz_ladder(4)
            one = service.submit(first, second)
            two = service.submit(first, second)
            assert one["coalesced"] is False and two["coalesced"] is False
            assert one["job_id"] != two["job_id"]
        finally:
            service.shutdown()

    def test_submit_after_shutdown_fails_cleanly(self):
        service = VerificationService(Configuration(seed=SEED))
        service.shutdown()
        first, second = ghz_ladder(3), ghz_ladder(3)
        with pytest.raises(ServiceError) as excinfo:
            service.submit(first, second)
        assert excinfo.value.status == 503
        # The dead submission left nothing behind: no husk job to coalesce
        # onto, no stuck in-flight fingerprint.
        assert service.stats()["in_flight"] == 0
        assert service.stats()["jobs"] == {}

    def test_status_reads_are_never_torn_while_job_settles(self):
        # Regression: _execute used to mutate job fields outside the service
        # lock, so a concurrent job_status could observe status == "done" with
        # finished_at/result still unset.  Hammer status from several threads
        # while jobs settle and assert every snapshot is internally consistent.
        service = VerificationService(Configuration(seed=SEED, max_workers=2))
        try:
            submissions = [
                service.submit(ghz_ladder(size), ghz_ladder(size))
                for size in (2, 3, 4)
            ]
            job_ids = [submission["job_id"] for submission in submissions]
            torn: list[dict] = []
            stop = threading.Event()

            def hammer():
                while not stop.is_set():
                    for job_id in job_ids:
                        snapshot = service.job_status(job_id)
                        if snapshot["status"] == "done" and (
                            snapshot["finished_at"] is None
                            or service.job_result(job_id) is None
                        ):
                            torn.append(snapshot)
                        if snapshot["status"] == "running" and (
                            snapshot["started_at"] is None
                        ):
                            torn.append(snapshot)

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for thread in threads:
                thread.start()
            try:
                for job_id in job_ids:
                    assert service.wait_settled(job_id, timeout=30.0)
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=10.0)
            assert torn == []
        finally:
            service.shutdown()

    def test_wait_settled_and_listeners(self):
        service = VerificationService(Configuration(seed=SEED, max_workers=1))
        try:
            submission = service.submit(ghz_ladder(3), ghz_ladder(3))
            job_id = submission["job_id"]
            woken = threading.Event()
            registered = service.add_settled_listener(job_id, woken.set)
            assert service.wait_settled(job_id, timeout=30.0)
            if registered:
                assert woken.wait(timeout=5.0)
            # Once settled, a new listener is refused instead of queued.
            assert service.add_settled_listener(job_id, woken.set) is False
            # Unknown ids report settled immediately (nothing to wait for).
            assert service.wait_settled("job-999999", timeout=0.1)
        finally:
            service.shutdown()

    def test_thread_backend_queue_limit_backpressure(self):
        service = VerificationService(
            Configuration(seed=SEED, max_workers=1), queue_limit=1
        )
        try:
            gate = threading.Event()
            original = service.manager.run

            def held(first, second, **kwargs):
                assert gate.wait(30.0)
                return original(first, second, **kwargs)

            service.manager.run = held
            accepted = service.submit(ghz_ladder(3), ghz_ladder(3))
            with pytest.raises(ServiceError) as excinfo:
                service.submit(ghz_ladder(4), ghz_ladder(4))
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after is not None
            gate.set()
            assert service.wait_settled(accepted["job_id"], timeout=30.0)
            assert service.submit(ghz_ladder(4), ghz_ladder(4))["job_id"]
            assert service.stats()["rejected"] == 1
        finally:
            gate.set()
            service.shutdown()

    def test_server_forwards_cache_and_retention_knobs(self):
        server = VerificationServer(
            port=0,
            configuration=Configuration(seed=SEED, max_workers=1),
            cache=False,
            max_finished_jobs=7,
            queue_limit=3,
        )
        try:
            assert server.service.manager.verdict_cache is None
            assert server.service.max_finished_jobs == 7
            assert server.service.queue_limit == 3
        finally:
            server.close()

    def test_many_concurrent_submissions_one_execution(self):
        service = VerificationService(Configuration(seed=SEED, max_workers=2))
        try:
            first, second = qft_static_benchmark(5), qft_dynamic(5)
            outcomes = []
            barrier = threading.Barrier(4)

            def submit():
                barrier.wait()
                outcomes.append(service.submit(first, second))

            threads = [threading.Thread(target=submit) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            job_ids = {outcome["job_id"] for outcome in outcomes}
            assert len(job_ids) == 1
            assert sum(outcome["coalesced"] for outcome in outcomes) == 3
        finally:
            service.shutdown()


class TestServeCli:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 8111
        assert args.scheduler == "adaptive"
        assert args.cache_path is None
        assert args.gate_cache_ttl is None

    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert f"repro-qcec {repro.__version__}" in capsys.readouterr().out


class TestBatchCacheCli:
    def test_batch_verdict_cache_dedupes_and_reports(self, tmp_path, capsys):
        qasm = tmp_path / "ghz.qasm"
        qasm.write_text(ghz_ladder(3).to_qasm(), encoding="utf-8")
        manifest = tmp_path / "manifest.txt"
        manifest.write_text(
            "# duplicate-heavy manifest\n\nghz.qasm ghz.qasm\n" * 3, encoding="utf-8"
        )
        code = main(["batch", str(manifest), "--verdict-cache", "--json"])
        assert code == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["cache"]["hits"] >= 2
        assert payload["entries"][0]["cached"] is False
        assert payload["entries"][1]["cached"] is True

    def test_batch_cache_path_warm_rerun(self, tmp_path, capsys):
        qasm_a = tmp_path / "a.qasm"
        qasm_a.write_text(ghz_ladder(3).to_qasm(), encoding="utf-8")
        qasm_b = tmp_path / "b.qasm"
        qasm_b.write_text(ghz_ladder(3).to_qasm(), encoding="utf-8")
        manifest = tmp_path / "manifest.txt"
        manifest.write_text("a.qasm b.qasm\n", encoding="utf-8")
        cache_path = tmp_path / "verdicts.jsonl"

        assert main(["batch", str(manifest), "--cache-path", str(cache_path)]) == 0
        capsys.readouterr()
        assert main(["batch", str(manifest), "--cache-path", str(cache_path)]) == 0
        import json

        assert cache_path.exists()
        capsys.readouterr()
        assert (
            main(["batch", str(manifest), "--cache-path", str(cache_path), "--json"])
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"][0]["cached"] is True

    def test_manifest_comment_and_blank_lines_skipped_with_line_numbers(
        self, tmp_path, capsys
    ):
        qasm = tmp_path / "ghz.qasm"
        qasm.write_text(ghz_ladder(3).to_qasm(), encoding="utf-8")
        manifest = tmp_path / "manifest.txt"
        manifest.write_text(
            "# header comment\n"
            "\n"
            "ghz.qasm ghz.qasm  # trailing comment\n"
            "\n"
            "ghz.qasm\n",  # line 5: malformed
            encoding="utf-8",
        )
        code = main(["batch", str(manifest)])
        assert code == 2
        err = capsys.readouterr().err
        assert "line 5" in err

    def test_json_manifest_error_names_the_entry(self, tmp_path, capsys):
        manifest = tmp_path / "manifest.json"
        manifest.write_text('[["a.qasm", "b.qasm"], ["only-one.qasm"]]', encoding="utf-8")
        code = main(["batch", str(manifest)])
        assert code == 2
        assert "entry 1" in capsys.readouterr().err
