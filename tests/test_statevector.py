"""Tests for the dense statevector simulator."""

import math

import numpy as np
import pytest

from repro.circuit import QuantumCircuit
from repro.circuit.gates import CXGate, HGate, XGate
from repro.exceptions import SimulationError
from repro.simulators.statevector import Statevector, StatevectorSimulator, apply_matrix_to_state


class TestConstruction:
    def test_zero_state(self):
        state = Statevector.zero_state(2)
        assert np.allclose(state.data, [1, 0, 0, 0])

    def test_basis_state(self):
        state = Statevector.basis_state(2, 2)
        assert np.allclose(state.data, [0, 0, 1, 0])

    def test_from_bitstring_is_msb_first(self):
        # "10" means qubit 1 = 1, qubit 0 = 0 -> index 2.
        state = Statevector.from_bitstring("10")
        assert np.allclose(state.data, [0, 0, 1, 0])

    def test_invalid_length_raises(self):
        with pytest.raises(SimulationError):
            Statevector([1, 0, 0], 2)

    def test_basis_state_out_of_range(self):
        with pytest.raises(SimulationError):
            Statevector.basis_state(1, 5)


class TestGateApplication:
    def test_x_gate(self):
        state = Statevector.zero_state(1).apply_gate(XGate(), [0])
        assert np.allclose(state.data, [0, 1])

    def test_h_gate(self):
        state = Statevector.zero_state(1).apply_gate(HGate(), [0])
        assert np.allclose(state.data, [1 / math.sqrt(2), 1 / math.sqrt(2)])

    def test_bell_state(self):
        state = Statevector.zero_state(2)
        state = state.apply_gate(HGate(), [0])
        state = state.apply_gate(CXGate(), [0, 1])
        expected = np.array([1, 0, 0, 1]) / math.sqrt(2)
        assert np.allclose(state.data, expected)

    def test_gate_on_upper_qubit(self):
        state = Statevector.zero_state(2).apply_gate(XGate(), [1])
        assert np.allclose(state.data, [0, 0, 1, 0])

    def test_cx_direction_matters(self):
        state = Statevector.basis_state(2, 0b10)  # qubit 1 set
        flipped = state.apply_gate(CXGate(), [1, 0])  # control qubit 1 -> target qubit 0
        assert np.allclose(flipped.data, Statevector.basis_state(2, 0b11).data)
        unchanged = state.apply_gate(CXGate(), [0, 1])
        assert np.allclose(unchanged.data, state.data)

    def test_apply_matrix_rejects_bad_shape(self):
        with pytest.raises(SimulationError):
            apply_matrix_to_state(np.zeros(4, dtype=complex), np.eye(2), [0, 1], 2)

    def test_apply_matrix_rejects_duplicates(self):
        with pytest.raises(SimulationError):
            apply_matrix_to_state(np.zeros(4, dtype=complex), np.eye(4), [0, 0], 2)

    def test_apply_matrix_matches_embedding(self):
        from repro.simulators.unitary import embed_gate_matrix

        rng = np.random.default_rng(5)
        state = rng.normal(size=8) + 1j * rng.normal(size=8)
        gate = CXGate().matrix
        direct = apply_matrix_to_state(state, gate, [2, 0], 3)
        embedded = embed_gate_matrix(gate, [2, 0], 3) @ state
        assert np.allclose(direct, embedded)


class TestMeasurement:
    def test_probability_of_one(self):
        state = Statevector.zero_state(1).apply_gate(HGate(), [0])
        assert state.probability_of_one(0) == pytest.approx(0.5)

    def test_probability_on_entangled_state(self):
        state = Statevector.zero_state(2)
        state = state.apply_gate(HGate(), [0]).apply_gate(CXGate(), [0, 1])
        assert state.probability_of_one(1) == pytest.approx(0.5)

    def test_collapse(self):
        state = Statevector.zero_state(2)
        state = state.apply_gate(HGate(), [0]).apply_gate(CXGate(), [0, 1])
        collapsed = state.collapse(0, 1)
        assert np.allclose(collapsed.data, Statevector.basis_state(2, 3).data)

    def test_collapse_zero_probability_raises(self):
        state = Statevector.zero_state(1)
        with pytest.raises(SimulationError):
            state.collapse(0, 1)

    def test_collapse_invalid_outcome_raises(self):
        state = Statevector.zero_state(1)
        with pytest.raises(SimulationError):
            state.collapse(0, 2)

    def test_reset_outcomes_of_plus_state(self):
        state = Statevector.zero_state(1).apply_gate(HGate(), [0])
        branches = state.reset_qubit_outcomes(0)
        assert len(branches) == 2
        for probability, branch in branches:
            assert probability == pytest.approx(0.5)
            assert np.allclose(branch.data, [1, 0])

    def test_reset_outcomes_of_basis_state(self):
        state = Statevector.basis_state(1, 1)
        branches = state.reset_qubit_outcomes(0)
        assert len(branches) == 1
        probability, branch = branches[0]
        assert probability == pytest.approx(1.0)
        assert np.allclose(branch.data, [1, 0])


class TestReadOut:
    def test_probabilities_dict(self):
        state = Statevector.zero_state(2)
        state = state.apply_gate(HGate(), [0]).apply_gate(CXGate(), [0, 1])
        probabilities = state.probabilities_dict()
        assert probabilities == pytest.approx({"00": 0.5, "11": 0.5})

    def test_sample_counts_total(self):
        state = Statevector.zero_state(1).apply_gate(HGate(), [0])
        counts = state.sample_counts(200, seed=3)
        assert sum(counts.values()) == 200
        assert set(counts) <= {"0", "1"}

    def test_fidelity_and_equiv(self):
        plus = Statevector.zero_state(1).apply_gate(HGate(), [0])
        phased = Statevector(plus.data * np.exp(0.3j))
        assert plus.fidelity(phased) == pytest.approx(1.0)
        assert plus.equiv(phased)
        assert plus.fidelity(Statevector.basis_state(1, 0)) == pytest.approx(0.5)

    def test_inner_product_size_mismatch_raises(self):
        with pytest.raises(SimulationError):
            Statevector.zero_state(1).inner_product(Statevector.zero_state(2))

    def test_normalize(self):
        state = Statevector([2, 0], 1).normalize()
        assert state.norm() == pytest.approx(1.0)
        with pytest.raises(SimulationError):
            Statevector([0, 0], 1).normalize()


class TestSimulator:
    def test_run_ignores_final_measurements(self):
        circuit = QuantumCircuit(2, 2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.measure_all()
        state = StatevectorSimulator().run(circuit)
        assert state.probabilities_dict() == pytest.approx({"00": 0.5, "11": 0.5})

    def test_run_rejects_dynamic_circuit(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        circuit.x(0, condition=(0, 1))
        with pytest.raises(SimulationError):
            StatevectorSimulator().run(circuit)

    def test_run_with_initial_bitstring(self):
        circuit = QuantumCircuit(2)
        circuit.cx(1, 0)
        state = StatevectorSimulator().run(circuit, "10")
        assert np.allclose(state.data, Statevector.from_bitstring("11").data)

    def test_run_with_initial_state_object(self):
        circuit = QuantumCircuit(1)
        circuit.x(0)
        initial = Statevector.basis_state(1, 1)
        state = StatevectorSimulator().run(circuit, initial)
        assert np.allclose(state.data, [1, 0])

    def test_initial_state_size_mismatch_raises(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(SimulationError):
            StatevectorSimulator().run(circuit, Statevector.zero_state(1))

    def test_run_with_conditioned_gate_on_static_circuit(self):
        # A condition makes the circuit dynamic even if trivially satisfied.
        circuit = QuantumCircuit(1, 1)
        circuit.x(0, condition=(0, 1))
        with pytest.raises(SimulationError):
            StatevectorSimulator().run(circuit)
