"""Tests for the alternating-scheme strategies and the simulative checker."""

import pytest

from repro.algorithms import ghz_fanout, ghz_ladder, ghz_with_bug
from repro.circuit import QuantumCircuit
from repro.core.simulative import run_simulative_check
from repro.core.strategies import LEFT, RIGHT, alternating_schedule
from repro.exceptions import EquivalenceCheckingError


class TestSchedules:
    @pytest.mark.parametrize("strategy", ["naive", "one_to_one", "proportional"])
    @pytest.mark.parametrize("num_left,num_right", [(5, 5), (3, 9), (9, 3), (0, 4), (4, 0), (1, 1)])
    def test_schedule_covers_all_gates(self, strategy, num_left, num_right):
        tokens = list(alternating_schedule(num_left, num_right, strategy))
        assert tokens.count(LEFT) == num_left
        assert tokens.count(RIGHT) == num_right

    def test_naive_order(self):
        tokens = list(alternating_schedule(2, 3, "naive"))
        assert tokens == [LEFT, LEFT, RIGHT, RIGHT, RIGHT]

    def test_one_to_one_alternates(self):
        tokens = list(alternating_schedule(3, 3, "one_to_one"))
        assert tokens == [LEFT, RIGHT] * 3

    def test_proportional_interleaving_ratio(self):
        tokens = list(alternating_schedule(2, 6, "proportional"))
        # After every prefix the applied ratio should track 2:6 within one gate.
        left_seen = 0
        right_seen = 0
        for token in tokens:
            if token == LEFT:
                left_seen += 1
            else:
                right_seen += 1
            assert abs(right_seen - 3 * left_seen) <= 3
        assert left_seen == 2 and right_seen == 6

    def test_unknown_strategy_raises(self):
        with pytest.raises(EquivalenceCheckingError):
            list(alternating_schedule(1, 1, "lookahead"))

    def test_negative_counts_raise(self):
        with pytest.raises(EquivalenceCheckingError):
            list(alternating_schedule(-1, 1, "naive"))


class TestSimulativeCheck:
    def test_equal_circuits_pass(self):
        passed, details = run_simulative_check(ghz_ladder(3), ghz_ladder(3), seed=7)
        assert passed
        assert details["min_fidelity"] == pytest.approx(1.0)

    def test_product_stimuli_distinguish_ladder_and_fanout(self):
        # Ladder and fan-out GHZ preparations differ as unitaries; random
        # product-state stimuli expose the difference.
        passed, _ = run_simulative_check(
            ghz_ladder(3), ghz_fanout(3), stimuli_type="product", num_simulations=8, seed=11
        )
        assert not passed

    def test_basis_stimuli(self):
        passed, details = run_simulative_check(
            ghz_fanout(3), ghz_with_bug(3), stimuli_type="basis", num_simulations=8, seed=3
        )
        # The bug is a relative phase, invisible in basis-state fidelities of
        # single runs only if the state stays a basis state; the H makes it
        # visible through interference for stimuli with qubit 0 set... either
        # verdict is acceptable here, but the call must succeed and report a
        # minimum fidelity.
        assert "min_fidelity" in details or "counterexample" in details

    def test_dense_backend(self):
        passed, _ = run_simulative_check(
            ghz_ladder(3), ghz_ladder(3), backend="dense", num_simulations=4, seed=5
        )
        assert passed

    def test_qubit_mismatch_raises(self):
        with pytest.raises(EquivalenceCheckingError):
            run_simulative_check(ghz_ladder(3), ghz_ladder(4))

    def test_dynamic_circuit_raises(self):
        dynamic = QuantumCircuit(1, 1)
        dynamic.measure(0, 0)
        dynamic.x(0, condition=(0, 1))
        with pytest.raises(EquivalenceCheckingError):
            run_simulative_check(dynamic, dynamic)

    def test_unknown_stimuli_type_raises(self):
        with pytest.raises(EquivalenceCheckingError):
            run_simulative_check(ghz_ladder(2), ghz_ladder(2), stimuli_type="ghz")

    def test_unknown_backend_raises(self):
        with pytest.raises(EquivalenceCheckingError):
            run_simulative_check(ghz_ladder(2), ghz_ladder(2), backend="tensor")
