"""Property-based tests (hypothesis) for the alternating application schedules.

The schedules drive the alternating equivalence-checking scheme: get the token
counts wrong and gates of one circuit are skipped or applied twice, silently
corrupting the verdict.  These properties pin the schedule contract for all
strategies and gate counts.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.strategies import LEFT, RIGHT, alternating_schedule
from repro.exceptions import EquivalenceCheckingError

STATIC_STRATEGIES = ("naive", "one_to_one", "proportional")

counts = st.integers(min_value=0, max_value=200)


@settings(deadline=None)
@given(num_left=counts, num_right=counts, strategy=st.sampled_from(STATIC_STRATEGIES))
def test_every_strategy_emits_exact_token_counts(num_left, num_right, strategy):
    tokens = list(alternating_schedule(num_left, num_right, strategy))
    assert tokens.count(LEFT) == num_left
    assert tokens.count(RIGHT) == num_right
    assert len(tokens) == num_left + num_right
    assert set(tokens) <= {LEFT, RIGHT}


@settings(deadline=None)
@given(num_left=counts, num_right=counts, strategy=st.sampled_from(STATIC_STRATEGIES))
def test_schedules_never_overrun_either_circuit(num_left, num_right, strategy):
    """Prefix counts never exceed the available gates (no index overruns)."""
    left_done = right_done = 0
    for token in alternating_schedule(num_left, num_right, strategy):
        if token == LEFT:
            left_done += 1
        else:
            right_done += 1
        assert left_done <= num_left
        assert right_done <= num_right


@settings(deadline=None)
@given(
    num_left=st.integers(min_value=1, max_value=200),
    num_right=st.integers(min_value=1, max_value=200),
)
def test_proportional_prefixes_track_the_ideal_ratio(num_left, num_right):
    """After k steps, k * num_left / (num_left + num_right) ± 1 LEFTs were emitted."""
    total = num_left + num_right
    left_done = 0
    for step, token in enumerate(alternating_schedule(num_left, num_right, "proportional"), 1):
        if token == LEFT:
            left_done += 1
        ideal = step * num_left / total
        assert abs(left_done - ideal) <= 1.0


@settings(deadline=None)
@given(num_left=counts, num_right=counts)
def test_naive_emits_all_lefts_first(num_left, num_right):
    tokens = list(alternating_schedule(num_left, num_right, "naive"))
    assert tokens == [LEFT] * num_left + [RIGHT] * num_right


@settings(deadline=None)
@given(
    num_left=counts,
    num_right=counts,
    strategy=st.text(min_size=1, max_size=12).filter(
        lambda s: s not in STATIC_STRATEGIES
    ),
)
def test_unknown_strategies_raise(num_left, num_right, strategy):
    with pytest.raises(EquivalenceCheckingError):
        list(alternating_schedule(num_left, num_right, strategy))


@pytest.mark.parametrize("strategy", STATIC_STRATEGIES)
def test_negative_counts_raise(strategy):
    with pytest.raises(EquivalenceCheckingError):
        list(alternating_schedule(-1, 3, strategy))
    with pytest.raises(EquivalenceCheckingError):
        list(alternating_schedule(3, -1, strategy))


def test_lookahead_is_not_a_static_schedule():
    """``lookahead`` is data-dependent and must be rejected here."""
    with pytest.raises(EquivalenceCheckingError):
        list(alternating_schedule(2, 2, "lookahead"))
