"""Tests for Scheme 1: unitary reconstruction through circuit transformation."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import iterative_qpe, qpe_static, running_example_lambda
from repro.circuit import QuantumCircuit
from repro.core.transformation import (
    defer_measurements,
    permute_qubits,
    substitute_resets,
    to_unitary_circuit,
)
from repro.exceptions import TransformationError
from repro.simulators.unitary import circuit_unitary, matrices_equal_up_to_global_phase


class TestConditionedResets:
    def _conditioned_reset_circuit(self):
        circuit = QuantumCircuit(1, 2)
        circuit.x(0)
        circuit.measure(0, 0)
        circuit.reset(0, condition=(0, 1))
        circuit.measure(0, 1)
        return circuit

    def _cross_qubit_conditioned_reset_circuit(self):
        circuit = QuantumCircuit(2, 2)
        circuit.h(0)
        circuit.x(1)
        circuit.measure(0, 0)
        circuit.reset(1, condition=(0, 1))
        circuit.measure(1, 1)
        return circuit

    def test_substitute_resets_emits_conditioned_swap(self):
        # A conditioned reset becomes a conditioned SWAP with a fresh |0>
        # ancilla: the role qubit conditionally trades its state for |0>,
        # which is a reset with the garbage parked on the ancilla.  (The old
        # behaviour — raising — would have miscompiled nothing, but forced
        # every such pair onto the Scheme 2 checkers only.)
        substituted = substitute_resets(self._cross_qubit_conditioned_reset_circuit())
        assert substituted.num_qubits == 3
        assert substituted.num_resets == 0
        swaps = [inst for inst in substituted if inst.operation.name == "swap"]
        assert len(swaps) == 1
        assert swaps[0].qubits == (1, 2)
        assert swaps[0].condition is not None

    def test_conditioned_reset_reconstruction_preserves_distribution(self):
        from repro.core.extraction import extract_distribution

        circuit = self._cross_qubit_conditioned_reset_circuit()
        reconstructed = to_unitary_circuit(circuit).circuit
        assert not reconstructed.is_dynamic
        original = extract_distribution(circuit).distribution
        rebuilt = extract_distribution(reconstructed).distribution
        assert original == pytest.approx(rebuilt)

    def test_self_conditioned_reset_still_rejected_at_deferral(self):
        # Resetting the very qubit that sourced the condition has no unitary
        # reconstruction: the deferred control and the swap target coincide.
        # substitute_resets succeeds (the swap is structurally fine) but
        # defer_measurements reports the measured-qubit reuse.
        substituted = substitute_resets(self._conditioned_reset_circuit())
        assert substituted.num_resets == 0
        with pytest.raises(TransformationError, match="used after being measured"):
            to_unitary_circuit(self._conditioned_reset_circuit())

    def test_conditioned_reset_on_untouched_qubit_is_dropped(self):
        circuit = QuantumCircuit(2, 2)
        circuit.h(0)
        circuit.measure(0, 0)
        circuit.reset(1, condition=(0, 1))  # qubit 1 still |0>: no-op either way
        substituted = substitute_resets(circuit)
        assert substituted.num_qubits == 2
        assert all(inst.operation.name != "swap" for inst in substituted)

    @staticmethod
    def _random_conditioned_reset_circuit(num_qubits: int, seed: int):
        """A reconstructible random circuit containing a conditioned reset.

        ``random_dynamic_circuit`` never emits conditioned resets, so this
        builds the shape by hand: random state preparation, a mid-circuit
        measurement, then a reset of a *different* qubit conditioned on that
        outcome (the self-conditioned case has no unitary reconstruction).
        """
        rng = random.Random(seed)
        circuit = QuantumCircuit(num_qubits, 2)
        gates = ("h", "x", "s", "t", "sx")
        for _ in range(rng.randint(1, 4)):
            getattr(circuit, rng.choice(gates))(rng.randrange(num_qubits))
        if num_qubits >= 2 and rng.random() < 0.5:
            control, target = rng.sample(range(num_qubits), 2)
            circuit.cx(control, target)
        measured = rng.randrange(num_qubits)
        circuit.measure(measured, 0)
        target = rng.choice([q for q in range(num_qubits) if q != measured])
        # Touch the target first so the reset is not dropped as a no-op.
        getattr(circuit, rng.choice(gates))(target)
        circuit.reset(target, condition=(0, rng.choice((0, 1))))
        if rng.random() < 0.5:
            getattr(circuit, rng.choice(gates))(target)
        circuit.measure(target, 1)
        return circuit

    @settings(max_examples=15, deadline=None)
    @given(num_qubits=st.integers(2, 3), seed=st.integers(0, 10_000))
    def test_reconstruction_agrees_with_distribution_extraction(
        self, num_qubits, seed
    ):
        """Scheme 1 on conditioned resets matches the Scheme 2 semantics."""
        from repro.core.extraction import extract_distribution

        circuit = self._random_conditioned_reset_circuit(num_qubits, seed)
        assert circuit.num_resets == 1
        reconstructed = to_unitary_circuit(circuit).circuit
        assert not reconstructed.is_dynamic
        assert reconstructed.num_resets == 0
        original = extract_distribution(circuit).distribution
        rebuilt = extract_distribution(reconstructed).distribution
        for key in set(original) | set(rebuilt):
            assert original.get(key, 0.0) == pytest.approx(
                rebuilt.get(key, 0.0), abs=1e-9
            ), key

    def test_unconditioned_resets_still_substituted(self):
        circuit = QuantumCircuit(1, 2)
        circuit.x(0)
        circuit.measure(0, 0)
        circuit.reset(0)
        circuit.measure(0, 1)
        substituted = substitute_resets(circuit)
        assert substituted.num_qubits == 2
        assert substituted.num_resets == 0


class TestSubstituteResets:
    def test_no_resets_returns_copy(self):
        circuit = QuantumCircuit(2, 2)
        circuit.h(0)
        result = substitute_resets(circuit)
        assert result.num_qubits == 2
        assert result.size == 1

    def test_one_reset_adds_one_qubit(self):
        circuit = QuantumCircuit(1, 2)
        circuit.h(0)
        circuit.measure(0, 0)
        circuit.reset(0)
        circuit.h(0)
        circuit.measure(0, 1)
        result = substitute_resets(circuit)
        assert result.num_qubits == 2
        assert result.num_resets == 0
        # The second H acts on the fresh qubit.
        h_targets = [inst.qubits[0] for inst in result if inst.operation.name == "h"]
        assert h_targets == [0, 1]

    def test_reset_on_untouched_qubit_is_dropped(self):
        circuit = QuantumCircuit(2, 1)
        circuit.reset(1)
        circuit.h(0)
        result = substitute_resets(circuit)
        assert result.num_qubits == 2
        assert result.num_resets == 0

    def test_multiple_resets_same_qubit(self):
        circuit = QuantumCircuit(1, 3)
        for k in range(3):
            circuit.h(0)
            circuit.measure(0, k)
            if k < 2:
                circuit.reset(0)
        result = substitute_resets(circuit)
        assert result.num_qubits == 3
        measured = [inst.qubits[0] for inst in result if inst.is_measurement]
        assert measured == [0, 1, 2]

    def test_paper_example_qubit_count(self):
        """An n-qubit circuit with r resets becomes an (n + r)-qubit circuit."""
        dynamic = iterative_qpe(3)
        assert dynamic.num_qubits == 2
        assert dynamic.num_resets == 2
        result = substitute_resets(dynamic)
        assert result.num_qubits == 4

    def test_conditions_are_preserved(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        circuit.reset(0)
        circuit.x(0, condition=(0, 1))
        result = substitute_resets(circuit)
        conditioned = [inst for inst in result if inst.condition is not None]
        assert len(conditioned) == 1
        assert conditioned[0].qubits == (1,)


class TestDeferMeasurements:
    def test_measurements_moved_to_end(self):
        circuit = QuantumCircuit(2, 1)
        circuit.h(0)
        circuit.measure(0, 0)
        circuit.h(1)
        deferred, sources = defer_measurements(circuit)
        assert deferred.data[-1].is_measurement
        assert sources == {0: 0}

    def test_classical_control_becomes_quantum_control(self):
        circuit = QuantumCircuit(2, 1)
        circuit.h(0)
        circuit.measure(0, 0)
        circuit.x(1, condition=(0, 1))
        deferred, _ = defer_measurements(circuit)
        names = [inst.operation.name for inst in deferred]
        assert "cx" in names
        cx = next(inst for inst in deferred if inst.operation.name == "cx")
        assert cx.qubits == (0, 1)

    def test_condition_value_zero_becomes_negative_control(self):
        circuit = QuantumCircuit(2, 1)
        circuit.h(0)
        circuit.measure(0, 0)
        circuit.x(1, condition=(0, 0))
        deferred, _ = defer_measurements(circuit)
        controlled = next(inst for inst in deferred if inst.operation.num_qubits == 2)
        assert controlled.operation.ctrl_state == 0

    def test_condition_on_never_written_bit(self):
        circuit = QuantumCircuit(1, 1)
        # The classical bit is never written: requiring 1 drops the gate,
        # requiring 0 keeps it unconditioned.
        circuit.x(0, condition=(0, 1))
        circuit.h(0, condition=(0, 0))
        deferred, _ = defer_measurements(circuit)
        names = [inst.operation.name for inst in deferred]
        assert names == ["h"]

    def test_reset_must_be_removed_first(self):
        circuit = QuantumCircuit(1, 1)
        circuit.h(0)
        circuit.reset(0)
        with pytest.raises(TransformationError):
            defer_measurements(circuit)

    def test_measured_qubit_reuse_raises(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        circuit.h(0)
        with pytest.raises(TransformationError):
            defer_measurements(circuit)

    def test_control_equal_to_target_raises(self):
        circuit = QuantumCircuit(2, 1)
        circuit.h(0)
        circuit.measure(0, 0)
        # After substitution the source qubit of c0 is qubit 0; conditioning a
        # gate on qubit 0 itself cannot be converted.
        circuit.x(1, condition=(0, 1))
        # Manually craft the conflicting case: condition controls the gate's own qubit.
        conflict = QuantumCircuit(1, 1)
        conflict.h(0)
        conflict.measure(0, 0)
        with pytest.raises(TransformationError):
            conflict.x(0, condition=(0, 1))
            defer_measurements(conflict)

    def test_deferred_circuit_preserves_fixed_input_behaviour(self):
        from repro.core.extraction import extract_distribution

        circuit = QuantumCircuit(2, 2)
        circuit.h(0)
        circuit.measure(0, 0)
        circuit.x(1, condition=(0, 1))
        circuit.measure(1, 1)
        deferred, _ = defer_measurements(circuit)
        original = extract_distribution(circuit).distribution
        reconstructed = extract_distribution(deferred).distribution
        assert original == pytest.approx(reconstructed)


class TestToUnitaryCircuit:
    def test_result_is_unitary_circuit(self):
        result = to_unitary_circuit(iterative_qpe(3))
        assert not result.circuit.is_dynamic
        assert result.circuit.num_resets == 0
        assert result.num_added_qubits == 2
        assert result.num_original_qubits == 2
        assert result.time_taken >= 0.0

    def test_measurement_sources_cover_all_clbits(self):
        result = to_unitary_circuit(iterative_qpe(4))
        assert set(result.measurement_sources.keys()) == set(range(4))

    def test_iqpe_reconstruction_equals_static_qpe(self):
        """Fig. 3b equals Fig. 1a: the reconstructed IQPE is the static QPE."""
        for num_bits in (2, 3):
            dynamic = iterative_qpe(num_bits, running_example_lambda)
            static = qpe_static(num_bits, running_example_lambda)
            reconstructed = to_unitary_circuit(dynamic).circuit
            assert matrices_equal_up_to_global_phase(
                circuit_unitary(reconstructed.remove_final_measurements()),
                circuit_unitary(static.remove_final_measurements()),
            )

    def test_already_static_circuit_passes_through(self):
        circuit = QuantumCircuit(2, 2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.measure_all()
        result = to_unitary_circuit(circuit)
        assert result.num_added_qubits == 0
        assert np.allclose(
            circuit_unitary(result.circuit), circuit_unitary(circuit), atol=1e-12
        )


class TestPermuteQubits:
    def test_permutation_relabels_gates(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 2)
        permuted = permute_qubits(circuit, {0: 2, 1: 1, 2: 0})
        assert permuted.data[0].qubits == (2, 0)

    def test_permutation_preserves_gate_count(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.ccx(0, 1, 2)
        permuted = permute_qubits(circuit, {0: 1, 1: 2, 2: 0})
        assert permuted.count_ops() == circuit.count_ops()

    def test_invalid_permutation_raises(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(TransformationError):
            permute_qubits(circuit, {0: 0, 1: 0})

    def test_identity_permutation_keeps_functionality(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        permuted = permute_qubits(circuit, {0: 0, 1: 1})
        assert np.allclose(circuit_unitary(permuted), circuit_unitary(circuit))
