"""Tests for dense system-matrix construction."""

import numpy as np
import pytest

from repro.circuit import QuantumCircuit
from repro.circuit.gates import CCXGate, CXGate, HGate, XGate
from repro.exceptions import SimulationError
from repro.simulators.unitary import (
    circuit_unitary,
    embed_gate_matrix,
    matrices_equal_up_to_global_phase,
    process_fidelity,
)


class TestEmbedding:
    def test_single_qubit_on_lowest(self):
        embedded = embed_gate_matrix(XGate().matrix, [0], 2)
        expected = np.kron(np.eye(2), XGate().matrix)
        assert np.allclose(embedded, expected)

    def test_single_qubit_on_highest(self):
        embedded = embed_gate_matrix(XGate().matrix, [1], 2)
        expected = np.kron(XGate().matrix, np.eye(2))
        assert np.allclose(embedded, expected)

    def test_cx_non_adjacent_qubits(self):
        embedded = embed_gate_matrix(CXGate().matrix, [0, 2], 3)
        # Control on qubit 0, target on qubit 2: |001> -> |101>.
        assert embedded[0b101, 0b001] == 1
        assert embedded[0b001, 0b101] == 1
        assert embedded[0b011, 0b011] == 0
        assert embedded[0b111, 0b011] == 1

    def test_ccx_embedding(self):
        embedded = embed_gate_matrix(CCXGate().matrix, [2, 0, 1], 3)
        # Controls on qubits 2 and 0, target on qubit 1.
        assert embedded[0b111, 0b101] == 1

    def test_unitarity_preserved(self):
        embedded = embed_gate_matrix(HGate().matrix, [1], 3)
        assert np.allclose(embedded @ embedded.conj().T, np.eye(8))

    def test_shape_mismatch_raises(self):
        with pytest.raises(SimulationError):
            embed_gate_matrix(np.eye(2), [0, 1], 2)

    def test_duplicate_targets_raise(self):
        with pytest.raises(SimulationError):
            embed_gate_matrix(np.eye(4), [0, 0], 2)


class TestCircuitUnitary:
    def test_bell_circuit(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        unitary = circuit_unitary(circuit)
        state = unitary[:, 0]
        assert np.allclose(np.abs(state) ** 2, [0.5, 0, 0, 0.5])

    def test_order_of_application(self):
        circuit = QuantumCircuit(1)
        circuit.x(0)
        circuit.h(0)
        unitary = circuit_unitary(circuit)
        assert np.allclose(unitary, HGate().matrix @ XGate().matrix)

    def test_final_measurements_ignored(self):
        circuit = QuantumCircuit(1, 1)
        circuit.h(0)
        circuit.measure(0, 0)
        assert np.allclose(circuit_unitary(circuit), HGate().matrix)

    def test_dynamic_circuit_raises(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        circuit.x(0, condition=(0, 1))
        with pytest.raises(SimulationError):
            circuit_unitary(circuit)

    def test_global_phase_gate(self):
        circuit = QuantumCircuit(1)
        circuit.global_phase(0.4)
        assert np.allclose(circuit_unitary(circuit), np.exp(0.4j) * np.eye(2))

    def test_barrier_is_identity(self):
        circuit = QuantumCircuit(2)
        circuit.barrier()
        assert np.allclose(circuit_unitary(circuit), np.eye(4))


class TestComparisons:
    def test_process_fidelity_of_equal_matrices(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        unitary = circuit_unitary(circuit)
        assert process_fidelity(unitary, unitary) == pytest.approx(1.0)

    def test_process_fidelity_with_global_phase(self):
        unitary = circuit_unitary(QuantumCircuit(1))
        assert process_fidelity(unitary, np.exp(1j) * unitary) == pytest.approx(1.0)

    def test_process_fidelity_detects_difference(self):
        a = np.eye(2, dtype=complex)
        b = XGate().matrix
        assert process_fidelity(a, b) == pytest.approx(0.0)

    def test_matrices_equal_up_to_global_phase(self):
        unitary = circuit_unitary(QuantumCircuit(1))
        assert matrices_equal_up_to_global_phase(unitary, -unitary)
        assert not matrices_equal_up_to_global_phase(unitary, XGate().matrix)

    def test_dimension_mismatch_raises(self):
        with pytest.raises(SimulationError):
            process_fidelity(np.eye(2), np.eye(4))
