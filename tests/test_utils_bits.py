"""Tests for the bitstring helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bits import (
    bits_to_int,
    bitstring_to_int,
    format_bitstring,
    int_to_bits,
    int_to_bitstring,
)


class TestIntToBits:
    def test_basic(self):
        assert int_to_bits(6, 4) == [0, 1, 1, 0]

    def test_zero(self):
        assert int_to_bits(0, 3) == [0, 0, 0]

    def test_width_zero(self):
        assert int_to_bits(0, 0) == []

    def test_truncates_to_width(self):
        assert int_to_bits(0b1111, 2) == [1, 1]

    def test_negative_value_raises(self):
        with pytest.raises(ValueError):
            int_to_bits(-1, 3)

    def test_negative_width_raises(self):
        with pytest.raises(ValueError):
            int_to_bits(1, -1)


class TestBitsToInt:
    def test_basic(self):
        assert bits_to_int([0, 1, 1, 0]) == 6

    def test_empty(self):
        assert bits_to_int([]) == 0

    def test_invalid_bit_raises(self):
        with pytest.raises(ValueError):
            bits_to_int([0, 2])


class TestBitstrings:
    def test_int_to_bitstring(self):
        assert int_to_bitstring(6, 4) == "0110"

    def test_int_to_bitstring_empty(self):
        assert int_to_bitstring(0, 0) == ""

    def test_bitstring_to_int(self):
        assert bitstring_to_int("0110") == 6

    def test_bitstring_to_int_empty(self):
        assert bitstring_to_int("") == 0

    def test_bitstring_to_int_invalid(self):
        with pytest.raises(ValueError):
            bitstring_to_int("01a")

    def test_int_to_bitstring_negative(self):
        with pytest.raises(ValueError):
            int_to_bitstring(-2, 4)

    def test_format_bitstring(self):
        assert format_bitstring([1, 0, 0]) == "001"

    def test_format_bitstring_empty(self):
        assert format_bitstring([]) == ""


class TestRoundTrips:
    @given(st.integers(min_value=0, max_value=2**16 - 1))
    def test_int_bits_roundtrip(self, value):
        assert bits_to_int(int_to_bits(value, 16)) == value

    @given(st.integers(min_value=0, max_value=2**16 - 1))
    def test_int_bitstring_roundtrip(self, value):
        assert bitstring_to_int(int_to_bitstring(value, 16)) == value

    @given(st.lists(st.integers(min_value=0, max_value=1), max_size=20))
    def test_format_matches_int_conversion(self, bits):
        assert format_bitstring(bits) == int_to_bitstring(bits_to_int(bits), len(bits))
