"""Verdict cache: tiers, persistence, manager integration, in-batch dedup, TTL."""

import pytest

from repro.algorithms import (
    bernstein_vazirani_dynamic,
    bernstein_vazirani_static,
    ghz_ladder,
    ghz_with_bug,
    qft_dynamic,
    qft_static_benchmark,
)
from repro.circuit import QuantumCircuit
from repro.core import Configuration, EquivalenceCheckingManager, EquivalenceCriterion
from repro.dd.package import DDPackage
from repro.exceptions import EquivalenceCheckingError
from repro.service.cache import CachedVerdict, VerdictCache
from repro.service.fingerprint import pair_fingerprint

SEED = 99


def _result(manager=None, first=None, second=None):
    manager = manager or EquivalenceCheckingManager(seed=SEED)
    first = first or ghz_ladder(3)
    second = second or ghz_ladder(3)
    return manager._run_uncached(first, second)


class TestVerdictCacheUnit:
    def test_miss_then_hit(self):
        cache = VerdictCache()
        assert cache.get("fp") is None
        assert cache.put("fp", _result())
        restored = cache.get("fp")
        assert restored is not None
        assert restored.cached is True
        assert restored.criterion is EquivalenceCriterion.EQUIVALENT
        stats = cache.statistics()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["stores"] == 1

    def test_hit_preserves_essentials(self):
        cache = VerdictCache()
        original = _result()
        cache.put("fp", original)
        restored = cache.get("fp")
        assert restored.criterion is original.criterion
        assert restored.decided_by == original.decided_by
        assert restored.schedule == original.schedule
        assert restored.scheduler == original.scheduler
        assert [a.method for a in restored.attempts] == [
            a.method for a in original.attempts
        ]
        assert restored.result is not None  # decided-by attempt is rebuilt

    def test_no_information_results_are_not_cached(self):
        from repro.core.results import PortfolioResult

        cache = VerdictCache()
        undecided = PortfolioResult(
            criterion=EquivalenceCriterion.NO_INFORMATION,
            decided_by=None,
            reason="nothing ran",
        )
        assert not cache.put("fp", undecided)
        assert not cache.contains("fp")

    def test_lru_eviction_counts(self):
        cache = VerdictCache(max_entries=2)
        result = _result()
        for key in ("a", "b", "c"):
            cache.put(key, result)
        stats = cache.statistics()
        assert stats["entries"] == 2
        assert stats["evictions"] == 1
        assert cache.get("a") is None  # least recently used went first
        assert cache.get("c") is not None

    def test_invalid_max_entries_rejected(self):
        with pytest.raises(ValueError):
            VerdictCache(max_entries=0)

    def test_cached_verdict_json_roundtrip(self):
        verdict = CachedVerdict.from_result("fp", _result())
        rebuilt = CachedVerdict.from_json(verdict.to_json())
        assert rebuilt == verdict


class TestVerdictCachePersistence:
    def test_survives_restart(self, tmp_path):
        path = tmp_path / "verdicts.jsonl"
        first = VerdictCache(path=path)
        first.put("fp", _result())
        reborn = VerdictCache(path=path)
        restored = reborn.get("fp")
        assert restored is not None
        assert restored.criterion is EquivalenceCriterion.EQUIVALENT
        stats = reborn.statistics()
        assert stats["persistent_hits"] == 1
        assert stats["persistent_entries"] == 1

    def test_eviction_does_not_lose_persisted_entries(self, tmp_path):
        path = tmp_path / "verdicts.jsonl"
        cache = VerdictCache(max_entries=1, path=path)
        result = _result()
        cache.put("a", result)
        cache.put("b", result)  # evicts "a" from the memory tier
        assert cache.get("a") is not None  # served from the journal tier
        assert cache.statistics()["persistent_hits"] == 1

    def test_clear_keeps_journal_backed_entries_servable(self, tmp_path):
        path = tmp_path / "verdicts.jsonl"
        cache = VerdictCache(path=path)
        cache.put("fp", _result())
        cache.clear()
        assert cache.get("fp") is not None  # replayed journal tier survives
        memory_only = VerdictCache()
        memory_only.put("fp", _result())
        memory_only.clear()
        assert memory_only.get("fp") is None

    def test_corrupt_journal_lines_are_skipped(self, tmp_path):
        path = tmp_path / "verdicts.jsonl"
        cache = VerdictCache(path=path)
        cache.put("fp", _result())
        with path.open("a", encoding="utf-8") as journal:
            journal.write("{truncated\n")
        reborn = VerdictCache(path=path)
        assert reborn.get("fp") is not None

    def test_missing_parent_directories_are_created_eagerly(self, tmp_path):
        path = tmp_path / "nested" / "deeper" / "verdicts.jsonl"
        cache = VerdictCache(path=path)
        assert path.exists()  # fail-fast touch at construction
        cache.put("fp", _result())
        assert VerdictCache(path=path).get("fp") is not None

    def test_journal_write_failure_degrades_to_memory_only(self, tmp_path, monkeypatch):
        path = tmp_path / "verdicts.jsonl"
        cache = VerdictCache(path=path)

        def broken_open(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(type(cache.path), "open", broken_open)
        assert cache.put("fp", _result())  # verification outcome survives
        monkeypatch.undo()
        assert cache.get("fp") is not None  # served from memory
        stats = cache.statistics()
        assert stats["journal_errors"] == 1
        assert stats["path"] is None  # persistence disabled after the failure

    def test_manager_cache_survives_restart(self, tmp_path):
        path = tmp_path / "verdicts.jsonl"
        first, second = ghz_ladder(3), ghz_ladder(3)
        cold = EquivalenceCheckingManager(seed=SEED, cache_path=str(path))
        fresh = cold.run(first, second)
        assert not fresh.cached
        warm = EquivalenceCheckingManager(seed=SEED, cache_path=str(path))
        replay = warm.run(first, second)
        assert replay.cached
        assert replay.criterion is fresh.criterion


class TestManagerCacheIntegration:
    def test_disabled_by_default(self):
        manager = EquivalenceCheckingManager(seed=SEED)
        assert manager.verdict_cache is None
        assert not Configuration().cache_enabled

    def test_run_hits_on_repeat(self):
        manager = EquivalenceCheckingManager(seed=SEED, verdict_cache=True)
        first, second = ghz_ladder(3), ghz_ladder(3)
        fresh = manager.run(first, second)
        repeat = manager.run(first, second)
        assert not fresh.cached
        assert repeat.cached
        assert repeat.criterion is fresh.criterion
        assert repeat.decided_by == fresh.decided_by
        assert manager.verdict_cache.hits == 1

    def test_not_equivalent_verdicts_cache_too(self):
        manager = EquivalenceCheckingManager(seed=SEED, verdict_cache=True)
        first, second = ghz_ladder(3), ghz_with_bug(3)
        fresh = manager.run(first, second)
        repeat = manager.run(first, second)
        assert fresh.criterion is EquivalenceCriterion.NOT_EQUIVALENT
        assert repeat.cached
        assert repeat.criterion is EquivalenceCriterion.NOT_EQUIVALENT

    def test_swapped_operands_do_not_collide(self):
        manager = EquivalenceCheckingManager(seed=SEED, verdict_cache=True)
        a, b = ghz_ladder(3), ghz_with_bug(3)
        manager.run(a, b)
        swapped = manager.run(b, a)
        assert not swapped.cached

    def test_permuted_runs_bypass_the_cache(self):
        manager = EquivalenceCheckingManager(seed=SEED, verdict_cache=True)
        first, second = ghz_ladder(3), ghz_ladder(3)
        manager.run(first, second)
        permuted = manager.run(
            first, second, qubit_permutation={0: 0, 1: 1, 2: 2}
        )
        assert not permuted.cached

    def test_injected_schedule_bypasses_the_cache(self):
        # The fingerprint does not commit to a caller-supplied schedule: such
        # runs must neither be stored (a falsifier-only schedule's
        # PROBABLY_EQUIVALENT would shadow the full portfolio's EQUIVALENT)
        # nor served (a hit would silently ignore the requested schedule).
        manager = EquivalenceCheckingManager(seed=SEED, verdict_cache=True)
        first, second = ghz_ladder(3), ghz_ladder(3)
        schedule = manager.schedule_for(first, second)
        scheduled = manager.run(first, second, schedule=schedule)
        assert not scheduled.cached
        assert manager.verdict_cache.statistics()["stores"] == 0
        manager.run(first, second)  # plain run primes the cache ...
        rescheduled = manager.run(first, second, schedule=schedule)
        assert not rescheduled.cached  # ... but scheduled runs still execute

    def test_unseeded_probably_equivalent_is_not_cached(self):
        # seed=None draws fresh stimuli per run: a later run could falsify a
        # pair an earlier run happened to pass, so that verdict must not be
        # frozen in the cache.
        first, second = ghz_ladder(3), ghz_ladder(3)
        unseeded = EquivalenceCheckingManager(
            verdict_cache=True, portfolio=("simulation",)
        )
        fresh = unseeded.run(first, second)
        assert fresh.criterion is EquivalenceCriterion.PROBABLY_EQUIVALENT
        repeat = unseeded.run(first, second)
        assert not repeat.cached
        assert unseeded.verdict_cache.statistics()["stores"] == 0
        # With a fixed seed the stimuli are part of the key: cacheable.
        seeded = EquivalenceCheckingManager(
            seed=SEED, verdict_cache=True, portfolio=("simulation",)
        )
        seeded.run(first, second)
        assert seeded.run(first, second).cached

    def test_unseeded_definitive_verdicts_still_cache(self):
        manager = EquivalenceCheckingManager(verdict_cache=True)
        first, second = ghz_ladder(3), ghz_ladder(3)
        fresh = manager.run(first, second)
        assert fresh.criterion is EquivalenceCriterion.EQUIVALENT
        assert manager.run(first, second).cached

    def test_precomputed_fingerprint_is_honoured(self):
        manager = EquivalenceCheckingManager(seed=SEED, verdict_cache=True)
        first, second = ghz_ladder(3), ghz_ladder(3)
        fingerprint = pair_fingerprint(first, second, manager.configuration)
        manager.run(first, second, fingerprint=fingerprint)
        assert manager.verdict_cache.contains(fingerprint)
        assert manager.run(first, second).cached  # same key either way

    def test_ultra_tight_tolerance_bypasses_the_cache(self):
        # The canonical form snaps angles within 1e-12 of pi multiples (as a
        # QASM round-trip does), so two such circuits share a fingerprint:
        import math

        from repro.service.fingerprint import circuit_fingerprint

        a = QuantumCircuit(1)
        a.rz(math.pi / 2, 0)
        b = QuantumCircuit(1)
        b.rz(math.pi / 2 + 5e-13, 0)
        assert circuit_fingerprint(a) == circuit_fingerprint(b)
        # A tolerance at/below that resolution could in principle tell them
        # apart, so fingerprint-keyed caching is disabled for it entirely.
        manager = EquivalenceCheckingManager(
            seed=SEED, verdict_cache=True, tolerance=1e-13
        )
        first, second = ghz_ladder(3), ghz_ladder(3)
        manager.run(first, second)
        repeat = manager.run(first, second)
        assert not repeat.cached
        assert manager.verdict_cache.statistics()["stores"] == 0

    def test_configuration_validation(self):
        with pytest.raises(EquivalenceCheckingError):
            Configuration(cache_size=0)
        assert Configuration(cache_path="x").cache_enabled


def _duplicate_heavy_pairs():
    """20 pairs, 4 distinct: the acceptance-criteria batch shape."""
    distinct = [
        (ghz_ladder(3), ghz_ladder(3)),
        (ghz_ladder(3), ghz_with_bug(3)),
        (qft_static_benchmark(3), qft_dynamic(3)),
        (
            bernstein_vazirani_static("101"),
            bernstein_vazirani_dynamic("101"),
        ),
    ]
    return [distinct[index % 4] for index in range(20)]


class TestInBatchDeduplication:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_dedup_agrees_with_uncached_run(self, executor):
        pairs = _duplicate_heavy_pairs()
        kwargs = dict(seed=SEED, executor=executor, max_workers=2, batch_chunk_size=2)
        plain = EquivalenceCheckingManager(**kwargs).verify_batch(pairs)
        cached_manager = EquivalenceCheckingManager(verdict_cache=True, **kwargs)
        deduped = cached_manager.verify_batch(pairs)

        assert [entry.index for entry in deduped.entries] == list(range(20))
        plain_criteria = [entry.result.criterion for entry in plain.entries]
        dedup_criteria = [entry.result.criterion for entry in deduped.entries]
        assert dedup_criteria == plain_criteria

        stats = cached_manager.verdict_cache.statistics()
        assert stats["hits"] >= 16, stats
        # Each of the 4 distinct pairs is stored under its raw fingerprint
        # plus (where canonicalizable) its translation-level-invariant
        # canonical fingerprint.
        assert 4 <= stats["stores"] <= 8

    def test_duplicate_entries_are_marked_cached(self):
        pairs = [(ghz_ladder(3), ghz_ladder(3))] * 3
        manager = EquivalenceCheckingManager(seed=SEED, verdict_cache=True)
        batch = manager.verify_batch(pairs)
        assert not batch.entries[0].result.cached
        assert batch.entries[1].result.cached
        assert batch.entries[2].result.cached

    def test_fan_out_replicates_undecidable_pairs_without_caching(self):
        good = ghz_ladder(3)
        lopsided = QuantumCircuit(2, name="lopsided")
        lopsided.h(0)
        pairs = [(good, lopsided), (good, lopsided)]
        manager = EquivalenceCheckingManager(seed=SEED, verdict_cache=True)
        batch = manager.verify_batch(pairs)
        # Mismatched qubit counts fail every checker: the pair ends
        # NO_INFORMATION, which is uncacheable — the duplicate replicates the
        # representative's verdict instead (same input, same outcome).
        for entry in batch.entries:
            assert entry.result.criterion is EquivalenceCriterion.NO_INFORMATION
        assert not batch.entries[1].result.cached
        assert batch.entries[1].name_second == "lopsided"
        assert manager.verdict_cache.statistics()["stores"] == 0

    def test_process_batch_stores_verdicts_in_parent_cache(self):
        pairs = [(ghz_ladder(3), ghz_ladder(3))]
        manager = EquivalenceCheckingManager(
            seed=SEED, verdict_cache=True, executor="process", max_workers=1
        )
        manager.verify_batch(pairs)
        fingerprint = pair_fingerprint(*pairs[0], manager.configuration)
        assert manager.verdict_cache.contains(fingerprint)

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_warm_batch_is_served_from_persistent_cache(self, executor, tmp_path):
        # Regression: process batches used to dispatch representatives to
        # (cache-less) workers without a parent-side lookup, so a warm
        # persistent cache was ignored on executor="process".
        path = tmp_path / "verdicts.jsonl"
        pairs = [(ghz_ladder(3), ghz_ladder(3)), (ghz_ladder(3), ghz_with_bug(3))]
        kwargs = dict(seed=SEED, cache_path=str(path), max_workers=2)
        cold = EquivalenceCheckingManager(executor=executor, **kwargs)
        cold_batch = cold.verify_batch(pairs)
        warm = EquivalenceCheckingManager(executor=executor, **kwargs)
        warm_batch = warm.verify_batch(pairs)
        assert all(entry.result.cached for entry in warm_batch.entries)
        assert [entry.result.criterion for entry in warm_batch.entries] == [
            entry.result.criterion for entry in cold_batch.entries
        ]
        stats = warm.verdict_cache.statistics()
        assert stats["hits"] == 2
        assert stats["stores"] == 0


class TestGateCacheTtl:
    def _package_with_clock(self, ttl):
        package = DDPackage(2, gate_cache_ttl=ttl)
        now = {"t": 0.0}
        package._clock = lambda: now["t"]
        return package, now

    def test_entries_expire_lazily_on_lookup(self):
        package, now = self._package_with_clock(ttl=10.0)
        edge = package.identity()
        package.gate_cache_store("key", edge)
        assert package.gate_cache_lookup("key") is edge
        now["t"] = 11.0
        assert package.gate_cache_lookup("key") is None
        stats = package.statistics()
        assert stats["gate_cache_expirations"] == 1
        assert stats["gate_cache_misses"] == 1
        # A re-store after expiry serves again.
        package.gate_cache_store("key", edge)
        assert package.gate_cache_lookup("key") is edge

    def test_entries_survive_within_ttl(self):
        package, now = self._package_with_clock(ttl=10.0)
        edge = package.identity()
        package.gate_cache_store("key", edge)
        now["t"] = 9.5
        assert package.gate_cache_lookup("key") is edge
        assert package.statistics()["gate_cache_expirations"] == 0

    def test_chain_cache_expires_too(self):
        import numpy as np

        package, now = self._package_with_clock(ttl=5.0)
        x = np.array([[0, 1], [1, 0]], dtype=complex)
        package.operator_chain({0: x})
        before = package.statistics()["chain_cache_expirations"]
        now["t"] = 6.0
        package.operator_chain({0: x})  # expired: rebuilt, counted
        assert package.statistics()["chain_cache_expirations"] == before + 1

    def test_ttl_validation(self):
        from repro.exceptions import DDError

        with pytest.raises(DDError):
            DDPackage(1, gate_cache_ttl=0.0)
        with pytest.raises(EquivalenceCheckingError):
            Configuration(gate_cache_ttl=-1.0)

    def test_ttl_config_reaches_checkers_without_changing_verdicts(self):
        first, second = ghz_ladder(3), ghz_ladder(3)
        plain = EquivalenceCheckingManager(seed=SEED).run(first, second)
        with_ttl = EquivalenceCheckingManager(seed=SEED, gate_cache_ttl=3600.0).run(
            first, second
        )
        assert with_ttl.criterion is plain.criterion
